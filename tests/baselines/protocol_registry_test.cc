#include "baselines/protocol_registry.h"

#include <gtest/gtest.h>

namespace nbraft::baselines {
namespace {

TEST(ProtocolRegistryTest, AllSevenProtocolsListed) {
  EXPECT_EQ(AllProtocols().size(), 7u);
}

TEST(ProtocolRegistryTest, TraitsMatchPaperTable2) {
  // Spot-check the claims of the paper's Table II.
  const ProtocolTraits& nb = TraitsFor(raft::Protocol::kNbRaft);
  EXPECT_EQ(nb.preferred_concurrency, "High");
  EXPECT_EQ(nb.persistence, "Low");
  EXPECT_TRUE(nb.follower_read);
  EXPECT_EQ(nb.cpu_usage, "Low");

  const ProtocolTraits& craft = TraitsFor(raft::Protocol::kCRaft);
  EXPECT_EQ(craft.preferred_request_size, "Large");
  EXPECT_FALSE(craft.follower_read);
  EXPECT_EQ(craft.cpu_usage, "High");

  const ProtocolTraits& raft = TraitsFor(raft::Protocol::kRaft);
  EXPECT_EQ(raft.preferred_concurrency, "Low");
  EXPECT_EQ(raft.persistence, "High");
  EXPECT_TRUE(raft.follower_read);
}

TEST(ProtocolRegistryTest, CombinationInheritsBothDownsides) {
  const ProtocolTraits& combo = TraitsFor(raft::Protocol::kNbCRaft);
  EXPECT_EQ(combo.preferred_concurrency, "High");  // From NB-Raft.
  EXPECT_EQ(combo.preferred_request_size, "Large");  // From CRaft.
  EXPECT_EQ(combo.persistence, "Low");               // From NB-Raft.
  EXPECT_FALSE(combo.follower_read);                 // From CRaft.
}

TEST(ProtocolRegistryTest, TableRendersEveryProtocol) {
  const std::string table = FormatTraitsTable();
  for (raft::Protocol p : AllProtocols()) {
    EXPECT_NE(table.find(std::string(raft::ProtocolName(p))),
              std::string::npos)
        << raft::ProtocolName(p);
  }
}

TEST(ProtocolRegistryTest, ProtocolNamesAreStable) {
  EXPECT_EQ(raft::ProtocolName(raft::Protocol::kRaft), "Raft");
  EXPECT_EQ(raft::ProtocolName(raft::Protocol::kNbRaft), "NB-Raft");
  EXPECT_EQ(raft::ProtocolName(raft::Protocol::kNbCRaft), "NB-Raft+CRaft");
  EXPECT_EQ(raft::ProtocolName(raft::Protocol::kVGRaft), "VGRaft");
}

TEST(ProtocolRegistryTest, OptionsForProtocolConfiguresFlags) {
  using raft::OptionsForProtocol;
  using raft::Protocol;
  EXPECT_EQ(OptionsForProtocol(Protocol::kRaft).window_size, 0);
  EXPECT_EQ(OptionsForProtocol(Protocol::kNbRaft).window_size, 10000);
  EXPECT_TRUE(OptionsForProtocol(Protocol::kCRaft).erasure);
  EXPECT_FALSE(OptionsForProtocol(Protocol::kCRaft).ecraft);
  EXPECT_TRUE(OptionsForProtocol(Protocol::kECRaft).ecraft);
  EXPECT_NE(OptionsForProtocol(Protocol::kKRaft).kbucket_size, 0);
  EXPECT_TRUE(OptionsForProtocol(Protocol::kVGRaft).verify_group);
  const auto combo = OptionsForProtocol(Protocol::kNbCRaft);
  EXPECT_GT(combo.window_size, 0);
  EXPECT_TRUE(combo.erasure);
}

}  // namespace
}  // namespace nbraft::baselines
