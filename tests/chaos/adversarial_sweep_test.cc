// The blast-radius regression matrix for protocol-level adversaries,
// fanned out through the parallel sweep scheduler: under the
// disruptive-server attack an unmitigated cluster MUST lose a healthy
// leader to an inflated term (that is what makes the attack an attack),
// while PreVote + CheckQuorum + leader lease bring depositions to exactly
// zero with bounded term inflation — on both Raft and NB-Raft, across a
// seed matrix. Per-cell attack assertions run against the sweep's
// reports; determinism is pinned by byte-identical merged reports across
// worker counts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"
#include "sweep/scheduler.h"

namespace nbraft::chaos {
namespace {

struct Mitigations {
  bool pre_vote = false;
  bool check_quorum = false;
  bool leader_lease = false;
};

harness::ClusterConfig AdversarialConfig(raft::Protocol protocol,
                                         uint64_t seed, Mitigations m) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 3;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  config.client_max_requests = 250;
  config.snapshot_threshold = 0;
  config.pre_vote = m.pre_vote;
  config.check_quorum = m.check_quorum;
  config.leader_lease = m.leader_lease;
  return config;
}

ChaosPlan AdversarialPlan(uint64_t seed, FaultKind attack) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.mix = {attack};  // Adversaries are opt-in, never in the default mix.
  plan.min_gap = Millis(40);
  plan.max_gap = Millis(150);
  // The victim must stay isolated for at least one election timeout
  // (150ms) or its timer never fires while cut off and nothing inflates.
  plan.min_duration = Millis(250);
  plan.max_duration = Millis(450);
  return plan;
}

ChaosRunner::Options AdversarialOptions(const std::string& cell_name,
                                        bool expect_zero_depositions,
                                        int64_t max_term_inflation) {
  ChaosRunner::Options options;
  options.rounds = 6;
  options.round_length = Millis(300);
  options.drain = Millis(1500);
  options.expect_zero_depositions = expect_zero_depositions;
  options.max_term_inflation = max_term_inflation;
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact, scoped per
  // cell so concurrent cells never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    options.postmortem_dir =
        std::string(dir) + "/AdversarialSweep." + cell_name;
  }
  return options;
}

std::string CellName(raft::Protocol protocol, uint64_t seed,
                     const std::string& variant) {
  return std::string(protocol == raft::Protocol::kRaft ? "Raft" : "NbRaft") +
         variant + "Seed" + std::to_string(seed);
}

/// The unmitigated half of the matrix: disruptive server vs a cluster
/// with no defenses.
std::vector<ChaosCell> UnmitigatedCells(uint64_t first_seed,
                                        uint64_t last_seed) {
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      ChaosCell cell;
      cell.name = CellName(protocol, seed, "Unmitigated");
      cell.config = AdversarialConfig(protocol, seed, Mitigations{});
      cell.plan = AdversarialPlan(seed, FaultKind::kDisruptiveServer);
      cell.options = AdversarialOptions(cell.name, false, -1);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

/// The fully mitigated half: same attack, PreVote + CheckQuorum + lease,
/// with the zero-deposition and inflation-bound oracle expectations armed
/// (bound 2: a live candidacy can legitimately sit one term ahead
/// mid-election; the attack without PreVote blows past this by one mint
/// per timeout isolated).
std::vector<ChaosCell> MitigatedCells(uint64_t first_seed,
                                      uint64_t last_seed) {
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      ChaosCell cell;
      cell.name = CellName(protocol, seed, "Mitigated");
      cell.config =
          AdversarialConfig(protocol, seed, Mitigations{true, true, true});
      cell.plan = AdversarialPlan(seed, FaultKind::kDisruptiveServer);
      cell.options = AdversarialOptions(cell.name, true, 2);
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(AdversarialSweepTest, DisruptiveServerDeposesUnmitigatedLeaders) {
  const std::vector<ChaosCell> cells = UnmitigatedCells(1, 10);
  const int workers = sweep::WorkersFromEnv(/*fallback=*/0);
  const ChaosSweepOutcome a = RunChaosSweep(cells, workers);
  for (size_t i = 0; i < a.reports.size(); ++i) {
    const ChaosReport& report = a.reports[i];
    const std::string& name = a.sweep.results[i].name;
    ASSERT_TRUE(a.sweep.results[i].completed)
        << name << ": " << a.sweep.results[i].error;
    // Safety (election safety, no acked-write loss) holds even under the
    // attack — the damage is availability and term churn, not corruption.
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u) << name << ": nemesis injected nothing";
    // The attack itself: the rejoining isolated server's inflated term
    // forced at least one perfectly healthy leader down.
    EXPECT_GE(report.leader_depositions, 1u)
        << name << ": disruptive server failed to depose anyone: the attack "
        << "(and therefore the mitigation tests) would be vacuous; "
        << report.Summary();
    EXPECT_GT(report.terms_started, report.terms_observed)
        << name << ": every minted term elected a leader: no inflation";
  }

  // Determinism: the attack schedule and its damage replay bit-identically.
  const ChaosSweepOutcome b = RunChaosSweep(cells, workers);
  EXPECT_EQ(a.sweep.merged_hash, b.sweep.merged_hash);
  EXPECT_EQ(a.sweep.ToJson(), b.sweep.ToJson());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].leader_depositions, b.reports[i].leader_depositions);
    EXPECT_EQ(a.reports[i].terms_started, b.reports[i].terms_started);
    EXPECT_EQ(a.reports[i].max_term, b.reports[i].max_term);
    EXPECT_EQ(a.reports[i].committed_prefix_hash,
              b.reports[i].committed_prefix_hash);
  }
}

TEST(AdversarialSweepTest, FullMitigationsStopEveryDeposition) {
  const std::vector<ChaosCell> cells = MitigatedCells(1, 10);
  const ChaosSweepOutcome outcome =
      RunChaosSweep(cells, sweep::WorkersFromEnv(/*fallback=*/0));
  // expect_zero_depositions + the inflation bound are enforced by the
  // safety oracle itself, so a violation also exercises the post-mortem
  // dump path in CI.
  EXPECT_TRUE(outcome.ok()) << outcome.sweep.Summary();
  for (size_t i = 0; i < outcome.reports.size(); ++i) {
    const ChaosReport& report = outcome.reports[i];
    const std::string& name = outcome.sweep.results[i].name;
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_EQ(report.leader_depositions, 0u) << name << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u) << name;
    EXPECT_GT(report.prevotes_rejected, 0u)
        << name << ": the isolated node never even canvassed: attack did "
        << "not land";
    EXPECT_GT(report.requests_completed, 0u) << name;
  }
}

TEST(AdversarialSweepTest, MergedReportByteIdenticalAcrossWorkerCounts) {
  // Both matrix halves interleaved, workers {1, 4, max} — the adversarial
  // cells carry oracle expectations, so this also pins that violation
  // *absence* merges identically in parallel.
  std::vector<ChaosCell> cells = UnmitigatedCells(1, 3);
  for (ChaosCell& cell : MitigatedCells(1, 3)) {
    cells.push_back(std::move(cell));
  }
  const ChaosSweepOutcome serial = RunChaosSweep(cells, /*workers=*/1);
  const ChaosSweepOutcome four = RunChaosSweep(cells, /*workers=*/4);
  const ChaosSweepOutcome max = RunChaosSweep(cells, /*workers=*/0);
  EXPECT_EQ(serial.sweep.merged_hash, four.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.merged_hash, max.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.ToJson(), four.sweep.ToJson());
  EXPECT_EQ(serial.sweep.ToJson(), max.sweep.ToJson());
}

// The other two adversaries, spot-checked with all mitigations on: a vote
// withholder only slows elections down, and a leader-targeted election
// storm cannot break election safety or lose acked writes.
TEST(AdversaryZooSweepTest, WithholderAndStormStaySafe) {
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (const uint64_t seed : {3u, 8u}) {
      for (const FaultKind attack :
           {FaultKind::kVoteWithholder, FaultKind::kElectionStorm}) {
        ChaosCell cell;
        cell.name = CellName(protocol, seed,
                             attack == FaultKind::kVoteWithholder ? "Withhold"
                                                                  : "Storm");
        cell.config =
            AdversarialConfig(protocol, seed, Mitigations{true, true, true});
        cell.plan = AdversarialPlan(seed, attack);
        cell.options = AdversarialOptions(cell.name, false, -1);
        cells.push_back(std::move(cell));
      }
    }
  }
  const ChaosSweepOutcome outcome =
      RunChaosSweep(cells, sweep::WorkersFromEnv(/*fallback=*/0));
  EXPECT_TRUE(outcome.ok()) << outcome.sweep.Summary();
  for (size_t i = 0; i < outcome.reports.size(); ++i) {
    const ChaosReport& report = outcome.reports[i];
    const std::string& name = outcome.sweep.results[i].name;
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u) << name;
    EXPECT_GT(report.requests_completed, 0u) << name;
  }
}

}  // namespace
}  // namespace nbraft::chaos
