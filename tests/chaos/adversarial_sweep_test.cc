// The blast-radius regression matrix for protocol-level adversaries:
// under the disruptive-server attack an unmitigated cluster MUST lose a
// healthy leader to an inflated term (that is what makes the attack an
// attack), while PreVote + CheckQuorum + leader lease bring depositions
// to exactly zero with bounded term inflation — on both Raft and NB-Raft,
// across a seed matrix, with every run replaying bit-identically.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"

namespace nbraft::chaos {
namespace {

struct Mitigations {
  bool pre_vote = false;
  bool check_quorum = false;
  bool leader_lease = false;
};

harness::ClusterConfig AdversarialConfig(raft::Protocol protocol,
                                         uint64_t seed, Mitigations m) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 3;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  config.client_max_requests = 250;
  config.snapshot_threshold = 0;
  config.pre_vote = m.pre_vote;
  config.check_quorum = m.check_quorum;
  config.leader_lease = m.leader_lease;
  return config;
}

ChaosPlan AdversarialPlan(uint64_t seed, FaultKind attack) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.mix = {attack};  // Adversaries are opt-in, never in the default mix.
  plan.min_gap = Millis(40);
  plan.max_gap = Millis(150);
  // The victim must stay isolated for at least one election timeout
  // (150ms) or its timer never fires while cut off and nothing inflates.
  plan.min_duration = Millis(250);
  plan.max_duration = Millis(450);
  return plan;
}

ChaosRunner::Options AdversarialOptions(bool expect_zero_depositions,
                                        int64_t max_term_inflation) {
  ChaosRunner::Options options;
  options.rounds = 6;
  options.round_length = Millis(300);
  options.drain = Millis(1500);
  options.expect_zero_depositions = expect_zero_depositions;
  options.max_term_inflation = max_term_inflation;
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact. Scoped per
  // test case so parallel parameterizations never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    options.postmortem_dir = std::string(dir) + "/" +
                             info->test_suite_name() + "." + info->name();
  }
  return options;
}

class AdversarialChaosTest
    : public ::testing::TestWithParam<std::tuple<raft::Protocol, uint64_t>> {
};

std::string ParamName(
    const ::testing::TestParamInfo<AdversarialChaosTest::ParamType>& info) {
  const raft::Protocol protocol = std::get<0>(info.param);
  const uint64_t seed = std::get<1>(info.param);
  return std::string(protocol == raft::Protocol::kRaft ? "Raft" : "NbRaft") +
         "Seed" + std::to_string(seed);
}

TEST_P(AdversarialChaosTest, DisruptiveServerDeposesUnmitigatedLeader) {
  const auto [protocol, seed] = GetParam();

  ChaosRunner first(AdversarialConfig(protocol, seed, Mitigations{}),
                    AdversarialPlan(seed, FaultKind::kDisruptiveServer),
                    AdversarialOptions(false, -1));
  const ChaosReport a = first.Run();

  // Safety (election safety, no acked-write loss) holds even under the
  // attack — the damage is availability and term churn, not corruption.
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_GT(a.faults.size(), 0u) << "nemesis injected nothing";

  // The attack itself: the rejoining isolated server's inflated term
  // forced at least one perfectly healthy leader down.
  EXPECT_GE(a.leader_depositions, 1u)
      << "disruptive server failed to depose anyone: the attack (and "
         "therefore the mitigation tests) would be vacuous; " << a.Summary();
  EXPECT_GT(a.terms_started, a.terms_observed)
      << "every minted term elected a leader: no inflation happened";

  // Determinism: the attack schedule and its damage replay bit-identically.
  ChaosRunner second(AdversarialConfig(protocol, seed, Mitigations{}),
                     AdversarialPlan(seed, FaultKind::kDisruptiveServer),
                     AdversarialOptions(false, -1));
  const ChaosReport b = second.Run();
  EXPECT_EQ(a.fault_fingerprint, b.fault_fingerprint);
  EXPECT_EQ(a.leader_depositions, b.leader_depositions);
  EXPECT_EQ(a.terms_started, b.terms_started);
  EXPECT_EQ(a.max_term, b.max_term);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.final_commit_index, b.final_commit_index);
  EXPECT_EQ(a.committed_prefix_hash, b.committed_prefix_hash);
}

TEST_P(AdversarialChaosTest, FullMitigationsStopEveryDeposition) {
  const auto [protocol, seed] = GetParam();
  const Mitigations all{true, true, true};

  // expect_zero_depositions + the inflation bound are enforced by the
  // safety oracle itself, so a violation also exercises the post-mortem
  // dump path in CI. Bound 2: a live candidacy can legitimately sit one
  // term ahead mid-election; the attack without PreVote blows past this
  // by one mint per timeout isolated.
  ChaosRunner runner(AdversarialConfig(protocol, seed, all),
                     AdversarialPlan(seed, FaultKind::kDisruptiveServer),
                     AdversarialOptions(true, 2));
  const ChaosReport report = runner.Run();

  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.leader_depositions, 0u) << report.Summary();
  EXPECT_GT(report.faults.size(), 0u) << "nemesis injected nothing";
  EXPECT_GT(report.prevotes_rejected, 0u)
      << "the isolated node never even canvassed: attack did not land";
  EXPECT_GT(report.requests_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AdversarialChaosTest,
    ::testing::Combine(::testing::Values(raft::Protocol::kRaft,
                                         raft::Protocol::kNbRaft),
                       ::testing::Range<uint64_t>(1, 11)),
    ParamName);

// The other two adversaries, spot-checked with all mitigations on: a
// vote withholder only slows elections down, and a leader-targeted
// election storm cannot break election safety or lose acked writes.
class AdversaryZooChaosTest
    : public ::testing::TestWithParam<std::tuple<raft::Protocol, uint64_t>> {
};

TEST_P(AdversaryZooChaosTest, WithholderAndStormStaySafe) {
  const auto [protocol, seed] = GetParam();
  const Mitigations all{true, true, true};

  for (const FaultKind attack :
       {FaultKind::kVoteWithholder, FaultKind::kElectionStorm}) {
    ChaosRunner runner(AdversarialConfig(protocol, seed, all),
                       AdversarialPlan(seed, attack),
                       AdversarialOptions(false, -1));
    const ChaosReport report = runner.Run();
    EXPECT_TRUE(report.ok())
        << FaultKindName(attack) << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u);
    EXPECT_GT(report.requests_completed, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AdversaryZooChaosTest,
    ::testing::Combine(::testing::Values(raft::Protocol::kRaft,
                                         raft::Protocol::kNbRaft),
                       ::testing::Values<uint64_t>(3, 8)),
    [](const ::testing::TestParamInfo<AdversaryZooChaosTest::ParamType>&
           info) {
      const raft::Protocol protocol = std::get<0>(info.param);
      return std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                           : "NbRaft") +
             "Seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace nbraft::chaos
