// The seeded chaos scenario matrix: Raft and NB-Raft each survive >= 25
// randomized fault schedules (crashes incl. leader-targeted, symmetric and
// one-way partitions, link flaps, drop/delay storms, clock skew, slow
// nodes) with zero safety-invariant violations and zero acknowledged-write
// loss — and every seed replays bit-identically (the determinism check is
// built into each case by running the scenario twice).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"
#include "obs/names.h"

namespace nbraft::chaos {
namespace {

harness::ClusterConfig SweepConfig(raft::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  // Alternate 3- and 5-replica clusters across the seed matrix.
  config.num_nodes = (seed % 2 == 0) ? 5 : 3;
  config.num_clients = 3;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  // Fast retry path so partitioned clients recover within a round.
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  // A finite workload lets the drain reach true quiescence, and keeps the
  // committed-id sets enumerable (snapshots stay off for the same reason).
  config.client_max_requests = 250;
  config.snapshot_threshold = 0;
  return config;
}

ChaosPlan SweepPlan(uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  return plan;
}

ChaosRunner::Options SweepOptions() {
  ChaosRunner::Options options;
  options.rounds = 5;
  options.round_length = Millis(200);
  options.drain = Millis(1500);
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact. Scoped per
  // test case so parallel parameterizations never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    options.postmortem_dir = std::string(dir) + "/" +
                             info->test_suite_name() + "." + info->name();
  }
  return options;
}

class ChaosSweepTest
    : public ::testing::TestWithParam<std::tuple<raft::Protocol, uint64_t>> {
};

TEST_P(ChaosSweepTest, SeedSurvivesAndReplaysIdentically) {
  const auto [protocol, seed] = GetParam();

  ChaosRunner first(SweepConfig(protocol, seed), SweepPlan(seed),
                    SweepOptions());
  const ChaosReport a = first.Run();
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_GT(a.faults.size(), 0u) << "nemesis injected nothing";
  EXPECT_GT(a.requests_completed, 0u) << "workload never converged";
  EXPECT_GT(a.strong_acked, 0u);

  // Determinism: the same (config, plan) replays to the identical fault
  // schedule, stats and final committed prefix.
  ChaosRunner second(SweepConfig(protocol, seed), SweepPlan(seed),
                     SweepOptions());
  const ChaosReport b = second.Run();
  EXPECT_EQ(a.fault_fingerprint, b.fault_fingerprint);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(FaultRecordToString(a.faults[i]),
              FaultRecordToString(b.faults[i]))
        << "fault schedule diverged at action " << i;
  }
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.strong_acked, b.strong_acked);
  EXPECT_EQ(a.lost_weak, b.lost_weak);
  EXPECT_EQ(a.terms_observed, b.terms_observed);
  EXPECT_EQ(a.final_commit_index, b.final_commit_index);
  EXPECT_EQ(a.committed_prefix_hash, b.committed_prefix_hash);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosSweepTest,
    ::testing::Combine(::testing::Values(raft::Protocol::kRaft,
                                         raft::Protocol::kNbRaft),
                       ::testing::Range<uint64_t>(1, 26)),
    [](const ::testing::TestParamInfo<ChaosSweepTest::ParamType>& info) {
      const raft::Protocol protocol = std::get<0>(info.param);
      const uint64_t seed = std::get<1>(info.param);
      return std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                           : "NbRaft") +
             "Seed" + std::to_string(seed);
    });

TEST(ChaosPlanTest, FingerprintCoversEveryField) {
  FaultRecord r;
  r.kind = FaultKind::kPartition;
  r.at = 123;
  r.a = 1;
  r.b = 2;
  const uint64_t base = FingerprintFaults({r});
  FaultRecord r2 = r;
  r2.heal = true;
  EXPECT_NE(FingerprintFaults({r2}), base);
  r2 = r;
  r2.at = 124;
  EXPECT_NE(FingerprintFaults({r2}), base);
  r2 = r;
  r2.b = 0;
  EXPECT_NE(FingerprintFaults({r2}), base);
  r2 = r;
  r2.param = 7;
  EXPECT_NE(FingerprintFaults({r2}), base);
  EXPECT_EQ(FingerprintFaults({r}), base);
}

TEST(ChaosObservabilityTest, EmitsInstantsAndCounters) {
  harness::ClusterConfig config =
      SweepConfig(raft::Protocol::kNbRaft, /*seed=*/3);
  config.trace = true;
  ChaosRunner::Options options = SweepOptions();
  options.rounds = 3;
  ChaosRunner runner(config, SweepPlan(3), options);
  const ChaosReport report = runner.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();

  // Every nemesis action surfaced through the tracer...
  harness::Cluster* cluster = runner.cluster();
  ASSERT_NE(cluster->tracer(), nullptr);
  size_t chaos_instants = 0;
  for (const obs::InstantEvent& e : cluster->tracer()->instants()) {
    if (std::strncmp(e.name, "chaos.", 6) == 0) ++chaos_instants;
  }
  EXPECT_GT(chaos_instants, 0u);

  // ... and the registry counted injections and heals per fault kind.
  ASSERT_NE(cluster->registry(), nullptr);
  int64_t injected = 0;
  int64_t per_kind_total = 0;
  for (const auto& [name, value] : cluster->registry()->CounterValues()) {
    if (name == obs::names::kChaosFaultsInjected) injected = value;
    if (name.rfind("chaos.", 0) == 0 &&
        name != obs::names::kChaosFaultsInjected &&
        name != obs::names::kChaosHealsTotal) {
      per_kind_total += value;
    }
  }
  EXPECT_GT(injected, 0);
  EXPECT_EQ(per_kind_total, injected);
}

TEST(ChaosRegistryTest, CountersSurfaceWithoutTracing) {
  // The registry exists even for untraced, unsampled clusters, so chaos
  // counters are never silently dropped.
  harness::ClusterConfig config =
      SweepConfig(raft::Protocol::kRaft, /*seed=*/5);
  ChaosRunner::Options options = SweepOptions();
  options.rounds = 2;
  ChaosRunner runner(config, SweepPlan(5), options);
  const ChaosReport report = runner.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  ASSERT_NE(runner.cluster()->registry(), nullptr);
  EXPECT_EQ(runner.cluster()->tracer(), nullptr);
  int64_t injected = 0;
  for (const auto& [name, value] :
       runner.cluster()->registry()->CounterValues()) {
    if (name == obs::names::kChaosFaultsInjected) injected = value;
  }
  EXPECT_GT(injected, 0);
}

}  // namespace
}  // namespace nbraft::chaos
