// The seeded chaos scenario matrix, fanned out through the parallel sweep
// scheduler: Raft and NB-Raft each survive >= 25 randomized fault
// schedules (crashes incl. leader-targeted, symmetric and one-way
// partitions, link flaps, drop/delay storms, clock skew, slow nodes) with
// zero safety-invariant violations and zero acknowledged-write loss. The
// determinism contract is pinned three ways: the merged sweep report is
// byte-identical across worker counts {1, 4, max}; the workers=1
// scheduler path produces exactly the hashes of a direct serial
// ChaosRunner loop; and a double-run of the full matrix replays
// bit-identically.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"
#include "obs/names.h"
#include "sweep/scheduler.h"

namespace nbraft::chaos {
namespace {

harness::ClusterConfig SweepConfig(raft::Protocol protocol, uint64_t seed) {
  harness::ClusterConfig config;
  // Alternate 3- and 5-replica clusters across the seed matrix.
  config.num_nodes = (seed % 2 == 0) ? 5 : 3;
  config.num_clients = 3;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  // Fast retry path so partitioned clients recover within a round.
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  // A finite workload lets the drain reach true quiescence, and keeps the
  // committed-id sets enumerable (snapshots stay off for the same reason).
  config.client_max_requests = 250;
  config.snapshot_threshold = 0;
  return config;
}

ChaosPlan SweepPlan(uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  return plan;
}

ChaosRunner::Options SweepOptions(const std::string& cell_name) {
  ChaosRunner::Options options;
  options.rounds = 5;
  options.round_length = Millis(200);
  options.drain = Millis(1500);
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact. Scoped per
  // cell so concurrently running cells never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    options.postmortem_dir =
        std::string(dir) + "/ChaosSweep." + cell_name;
  }
  return options;
}

ChaosCell MatrixCell(raft::Protocol protocol, uint64_t seed) {
  ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                            : "NbRaft") +
              "Seed" + std::to_string(seed);
  cell.config = SweepConfig(protocol, seed);
  cell.plan = SweepPlan(seed);
  cell.options = SweepOptions(cell.name);
  return cell;
}

std::vector<ChaosCell> MatrixCells(uint64_t first_seed, uint64_t last_seed) {
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      cells.push_back(MatrixCell(protocol, seed));
    }
  }
  return cells;
}

void ExpectAllCellsSurvived(const ChaosSweepOutcome& outcome) {
  EXPECT_TRUE(outcome.ok()) << outcome.sweep.Summary();
  for (size_t i = 0; i < outcome.reports.size(); ++i) {
    const ChaosReport& report = outcome.reports[i];
    const std::string& name = outcome.sweep.results[i].name;
    ASSERT_TRUE(outcome.sweep.results[i].completed)
        << name << ": " << outcome.sweep.results[i].error;
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u) << name << ": nemesis injected nothing";
    EXPECT_GT(report.requests_completed, 0u)
        << name << ": workload never converged";
    EXPECT_GT(report.strong_acked, 0u) << name;
  }
}

TEST(ChaosSweepTest, FullMatrixSurvivesAndReplaysIdentically) {
  // The 25-seed x 2-protocol matrix through the scheduler at the CI-chosen
  // worker count (NBRAFT_SWEEP_WORKERS, defaulting to every core), run
  // twice: same merged report bytes both times.
  const std::vector<ChaosCell> cells = MatrixCells(1, 25);
  const int workers = sweep::WorkersFromEnv(/*fallback=*/0);
  const ChaosSweepOutcome a = RunChaosSweep(cells, workers);
  ExpectAllCellsSurvived(a);
  const ChaosSweepOutcome b = RunChaosSweep(cells, workers);
  EXPECT_EQ(a.sweep.merged_hash, b.sweep.merged_hash);
  EXPECT_EQ(a.sweep.ToJson(), b.sweep.ToJson());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].fault_fingerprint, b.reports[i].fault_fingerprint)
        << a.sweep.results[i].name;
    EXPECT_EQ(a.reports[i].committed_prefix_hash,
              b.reports[i].committed_prefix_hash)
        << a.sweep.results[i].name;
  }
}

TEST(ChaosSweepTest, MergedReportByteIdenticalAcrossWorkerCounts) {
  // Acceptance pin: workers {1, 4, max} over a representative sub-matrix
  // produce byte-identical merged reports. Workers=1 is the serial oracle
  // (inline on this thread, no worker threads at all).
  const std::vector<ChaosCell> cells = MatrixCells(1, 6);
  const ChaosSweepOutcome serial = RunChaosSweep(cells, /*workers=*/1);
  ExpectAllCellsSurvived(serial);
  const ChaosSweepOutcome four = RunChaosSweep(cells, /*workers=*/4);
  const ChaosSweepOutcome max = RunChaosSweep(cells, /*workers=*/0);
  EXPECT_EQ(serial.sweep.merged_hash, four.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.merged_hash, max.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.ToJson(), four.sweep.ToJson());
  EXPECT_EQ(serial.sweep.ToJson(), max.sweep.ToJson());
}

TEST(ChaosSweepTest, SchedulerWorkersOneMatchesDirectSerialRun) {
  // The scheduler at workers=1 must reduce exactly to today's serial
  // loop: same ChaosRunner, same report hashes, no wrapping drift.
  const ChaosCell cell = MatrixCell(raft::Protocol::kNbRaft, 11);
  ChaosRunner direct(cell.config, cell.plan, cell.options);
  const ChaosReport serial_report = direct.Run();
  ASSERT_TRUE(serial_report.ok()) << serial_report.Summary();

  const ChaosSweepOutcome outcome = RunChaosSweep({cell}, /*workers=*/1);
  ASSERT_EQ(outcome.reports.size(), 1u);
  EXPECT_EQ(ChaosReportHash(outcome.reports[0]),
            ChaosReportHash(serial_report));
  EXPECT_EQ(outcome.reports[0].committed_prefix_hash,
            serial_report.committed_prefix_hash);
  EXPECT_EQ(outcome.reports[0].fault_fingerprint,
            serial_report.fault_fingerprint);
  EXPECT_EQ(outcome.sweep.results[0].output.fingerprint,
            ChaosReportHash(serial_report));
}

TEST(ChaosPlanTest, FingerprintCoversEveryField) {
  FaultRecord r;
  r.kind = FaultKind::kPartition;
  r.at = 123;
  r.a = 1;
  r.b = 2;
  const uint64_t base = FingerprintFaults({r});
  FaultRecord r2 = r;
  r2.heal = true;
  EXPECT_NE(FingerprintFaults({r2}), base);
  r2 = r;
  r2.at = 124;
  EXPECT_NE(FingerprintFaults({r2}), base);
  r2 = r;
  r2.b = 0;
  EXPECT_NE(FingerprintFaults({r2}), base);
  r2 = r;
  r2.param = 7;
  EXPECT_NE(FingerprintFaults({r2}), base);
  EXPECT_EQ(FingerprintFaults({r}), base);
}

TEST(ChaosObservabilityTest, EmitsInstantsAndCounters) {
  harness::ClusterConfig config =
      SweepConfig(raft::Protocol::kNbRaft, /*seed=*/3);
  config.trace = true;
  ChaosRunner::Options options = SweepOptions("Observability");
  options.rounds = 3;
  ChaosRunner runner(config, SweepPlan(3), options);
  const ChaosReport report = runner.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();

  // Every nemesis action surfaced through the tracer...
  harness::Cluster* cluster = runner.cluster();
  ASSERT_NE(cluster->tracer(), nullptr);
  size_t chaos_instants = 0;
  for (const obs::InstantEvent& e : cluster->tracer()->instants()) {
    if (std::strncmp(e.name, "chaos.", 6) == 0) ++chaos_instants;
  }
  EXPECT_GT(chaos_instants, 0u);

  // ... and the registry counted injections and heals per fault kind.
  ASSERT_NE(cluster->registry(), nullptr);
  int64_t injected = 0;
  int64_t per_kind_total = 0;
  for (const auto& [name, value] : cluster->registry()->CounterValues()) {
    if (name == obs::names::kChaosFaultsInjected) injected = value;
    if (name.rfind("chaos.", 0) == 0 &&
        name != obs::names::kChaosFaultsInjected &&
        name != obs::names::kChaosHealsTotal) {
      per_kind_total += value;
    }
  }
  EXPECT_GT(injected, 0);
  EXPECT_EQ(per_kind_total, injected);
}

TEST(ChaosRegistryTest, CountersSurfaceWithoutTracing) {
  // The registry exists even for untraced, unsampled clusters, so chaos
  // counters are never silently dropped.
  harness::ClusterConfig config =
      SweepConfig(raft::Protocol::kRaft, /*seed=*/5);
  ChaosRunner::Options options = SweepOptions("Registry");
  options.rounds = 2;
  ChaosRunner runner(config, SweepPlan(5), options);
  const ChaosReport report = runner.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  ASSERT_NE(runner.cluster()->registry(), nullptr);
  EXPECT_EQ(runner.cluster()->tracer(), nullptr);
  int64_t injected = 0;
  for (const auto& [name, value] :
       runner.cluster()->registry()->CounterValues()) {
    if (name == obs::names::kChaosFaultsInjected) injected = value;
  }
  EXPECT_GT(injected, 0);
}

}  // namespace
}  // namespace nbraft::chaos
