// The disk-fault chaos matrix through the parallel sweep scheduler: Raft
// and NB-Raft on simulated durable disks each survive >= 25 randomized
// schedules of crashes (incl. leader-targeted), crash-mid-fsync, stalled
// disks and tail corruption with zero safety violations — in particular
// the durability-claim invariant (every strong ack sits inside the
// fsynced prefix at crash time) and corruption healing under quarantine.
// Determinism is pinned by byte-identical merged reports across worker
// counts and a double-run of the full matrix.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "chaos/invariants.h"
#include "harness/cluster.h"
#include "sweep/scheduler.h"

namespace nbraft::chaos {
namespace {

harness::ClusterConfig DiskSweepConfig(raft::Protocol protocol,
                                       uint64_t seed) {
  harness::ClusterConfig config;
  // Alternate 3- and 5-replica clusters across the seed matrix.
  config.num_nodes = (seed % 2 == 0) ? 5 : 3;
  config.num_clients = 3;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  config.client_max_requests = 200;
  config.snapshot_threshold = 0;
  // The durable layer under test: simulated disks with real fsync
  // latency, group commit, and per-node fault streams.
  config.disk.enabled = true;
  config.disk.write_latency = Micros(10);
  config.disk.fsync_latency = Micros(100);
  config.disk.group_commit = true;
  config.disk.fault_seed = seed;
  return config;
}

ChaosPlan DiskSweepPlan(uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  // Disk-focused mix: crashes exercise the torn-tail/recovery path,
  // stalls push acks against slow barriers, corruption exercises the
  // repair + quarantine + heal chain (budgeted to one per run).
  plan.mix = {FaultKind::kCrash, FaultKind::kCrashLeader,
              FaultKind::kDiskStall, FaultKind::kDiskCorruption};
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  plan.disk_stall_extra = Millis(2);
  return plan;
}

ChaosCell DiskCell(raft::Protocol protocol, uint64_t seed) {
  ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                            : "NbRaft") +
              "Seed" + std::to_string(seed);
  cell.config = DiskSweepConfig(protocol, seed);
  cell.plan = DiskSweepPlan(seed);
  cell.options.rounds = 5;
  cell.options.round_length = Millis(200);
  cell.options.drain = Millis(1500);
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact, scoped per
  // cell so concurrent cells never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    cell.options.postmortem_dir =
        std::string(dir) + "/DiskChaosSweep." + cell.name;
  }
  return cell;
}

std::vector<ChaosCell> DiskMatrixCells(uint64_t first_seed,
                                       uint64_t last_seed) {
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      cells.push_back(DiskCell(protocol, seed));
    }
  }
  return cells;
}

TEST(DiskChaosSweepTest, FullMatrixSurvivesAndReplaysIdentically) {
  const std::vector<ChaosCell> cells = DiskMatrixCells(1, 25);
  const int workers = sweep::WorkersFromEnv(/*fallback=*/0);
  const ChaosSweepOutcome a = RunChaosSweep(cells, workers);
  EXPECT_TRUE(a.ok()) << a.sweep.Summary();
  for (size_t i = 0; i < a.reports.size(); ++i) {
    const ChaosReport& report = a.reports[i];
    const std::string& name = a.sweep.results[i].name;
    ASSERT_TRUE(a.sweep.results[i].completed)
        << name << ": " << a.sweep.results[i].error;
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u) << name << ": nemesis injected nothing";
    EXPECT_GT(report.requests_completed, 0u)
        << name << ": workload never converged";
    EXPECT_GT(report.strong_acked, 0u) << name;
  }

  // Determinism: the full durable matrix replays to identical bytes.
  const ChaosSweepOutcome b = RunChaosSweep(cells, workers);
  EXPECT_EQ(a.sweep.merged_hash, b.sweep.merged_hash);
  EXPECT_EQ(a.sweep.ToJson(), b.sweep.ToJson());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].fault_fingerprint, b.reports[i].fault_fingerprint)
        << a.sweep.results[i].name;
    EXPECT_EQ(a.reports[i].committed_prefix_hash,
              b.reports[i].committed_prefix_hash)
        << a.sweep.results[i].name;
  }
}

TEST(DiskChaosSweepTest, MergedReportByteIdenticalAcrossWorkerCounts) {
  // The durable path exercises the disk fault injector's own rng streams
  // and the recovery/quarantine machinery — pin that none of it leaks
  // across worker threads: workers {1, 4, max} byte-identical.
  const std::vector<ChaosCell> cells = DiskMatrixCells(1, 4);
  const ChaosSweepOutcome serial = RunChaosSweep(cells, /*workers=*/1);
  EXPECT_TRUE(serial.ok()) << serial.sweep.Summary();
  const ChaosSweepOutcome four = RunChaosSweep(cells, /*workers=*/4);
  const ChaosSweepOutcome max = RunChaosSweep(cells, /*workers=*/0);
  EXPECT_EQ(serial.sweep.merged_hash, four.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.merged_hash, max.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.ToJson(), four.sweep.ToJson());
  EXPECT_EQ(serial.sweep.ToJson(), max.sweep.ToJson());
}

}  // namespace
}  // namespace nbraft::chaos
