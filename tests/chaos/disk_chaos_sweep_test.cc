// The disk-fault chaos matrix: Raft and NB-Raft on simulated durable
// disks each survive >= 25 randomized schedules of crashes (incl.
// leader-targeted), crash-mid-fsync, stalled disks and tail corruption
// with zero safety violations — in particular the durability-claim
// invariant (every strong ack sits inside the fsynced prefix at crash
// time) and corruption healing under quarantine. Every seed replays
// bit-identically (each case runs its scenario twice).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/invariants.h"
#include "harness/cluster.h"

namespace nbraft::chaos {
namespace {

harness::ClusterConfig DiskSweepConfig(raft::Protocol protocol,
                                       uint64_t seed) {
  harness::ClusterConfig config;
  // Alternate 3- and 5-replica clusters across the seed matrix.
  config.num_nodes = (seed % 2 == 0) ? 5 : 3;
  config.num_clients = 3;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 7919 + 13;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  config.client_max_requests = 200;
  config.snapshot_threshold = 0;
  // The tentpole under test: durable simulated disks with real fsync
  // latency, group commit, and per-node fault streams.
  config.disk.enabled = true;
  config.disk.write_latency = Micros(10);
  config.disk.fsync_latency = Micros(100);
  config.disk.group_commit = true;
  config.disk.fault_seed = seed;
  return config;
}

ChaosPlan DiskSweepPlan(uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  // Disk-focused mix: crashes exercise the torn-tail/recovery path,
  // stalls push acks against slow barriers, corruption exercises the
  // repair + quarantine + heal chain (budgeted to one per run).
  plan.mix = {FaultKind::kCrash, FaultKind::kCrashLeader,
              FaultKind::kDiskStall, FaultKind::kDiskCorruption};
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  plan.disk_stall_extra = Millis(2);
  return plan;
}

ChaosRunner::Options DiskSweepOptions() {
  ChaosRunner::Options options;
  options.rounds = 5;
  options.round_length = Millis(200);
  options.drain = Millis(1500);
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    options.postmortem_dir = std::string(dir) + "/" +
                             info->test_suite_name() + "." + info->name();
  }
  return options;
}

class DiskChaosSweepTest
    : public ::testing::TestWithParam<std::tuple<raft::Protocol, uint64_t>> {
};

TEST_P(DiskChaosSweepTest, SeedSurvivesAndReplaysIdentically) {
  const auto [protocol, seed] = GetParam();

  ChaosRunner first(DiskSweepConfig(protocol, seed), DiskSweepPlan(seed),
                    DiskSweepOptions());
  const ChaosReport a = first.Run();
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_GT(a.faults.size(), 0u) << "nemesis injected nothing";
  EXPECT_GT(a.requests_completed, 0u) << "workload never converged";
  EXPECT_GT(a.strong_acked, 0u);

  // Determinism: same (config, plan) => identical fault schedule, stats
  // and final committed prefix.
  ChaosRunner second(DiskSweepConfig(protocol, seed), DiskSweepPlan(seed),
                     DiskSweepOptions());
  const ChaosReport b = second.Run();
  EXPECT_EQ(a.fault_fingerprint, b.fault_fingerprint);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(FaultRecordToString(a.faults[i]),
              FaultRecordToString(b.faults[i]))
        << "fault schedule diverged at action " << i;
  }
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.strong_acked, b.strong_acked);
  EXPECT_EQ(a.lost_weak, b.lost_weak);
  EXPECT_EQ(a.terms_observed, b.terms_observed);
  EXPECT_EQ(a.final_commit_index, b.final_commit_index);
  EXPECT_EQ(a.committed_prefix_hash, b.committed_prefix_hash);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DiskChaosSweepTest,
    ::testing::Combine(::testing::Values(raft::Protocol::kRaft,
                                         raft::Protocol::kNbRaft),
                       ::testing::Range<uint64_t>(1, 26)),
    [](const ::testing::TestParamInfo<DiskChaosSweepTest::ParamType>& info) {
      const raft::Protocol protocol = std::get<0>(info.param);
      const uint64_t seed = std::get<1>(info.param);
      return std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                           : "NbRaft") +
             "Seed" + std::to_string(seed);
    });

}  // namespace
}  // namespace nbraft::chaos
