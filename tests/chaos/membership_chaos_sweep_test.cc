// Dynamic-membership chaos matrix through the parallel sweep scheduler:
// elastic clusters grow 1 -> 3 -> 5 voters (scripted MembershipActions at
// round boundaries) and shrink 5 -> 3 under membership churn (the
// kMembershipChurn nemesis removes voters mid-fault and re-adds them as
// learners), for both Raft and NB-Raft, across randomized fault
// schedules. Every safety invariant — election safety across config
// boundaries, committed-entry survival through joint consensus, the
// voter-roster durability quorum — must hold on every seed, and the
// merged sweep report must be byte-identical across worker counts and
// across a double run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"
#include "raft/membership.h"
#include "raft/raft_node.h"
#include "sweep/scheduler.h"

namespace nbraft::chaos {
namespace {

using MembershipAction = ChaosRunner::MembershipAction;

harness::ClusterConfig ElasticConfig(raft::Protocol protocol, uint64_t seed,
                                     int initial_voters) {
  harness::ClusterConfig config;
  config.num_nodes = 5;
  config.num_clients = 2;
  config.initial_voters = initial_voters;
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 104729 + 7;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  // Finite per-client workload so the post-heal drain reaches quiescence
  // and the oracle's committed-id accounting stays enumerable.
  config.client_max_requests = 120;
  config.snapshot_threshold = 0;
  config.workload.series_count = 64;
  // A churned-out replica whose re-add ran out of retries keeps campaigning
  // under the stale configuration still in its log — the classic Raft §6
  // disrupted-server problem. Elastic clusters run the full mitigation
  // stack so a removed node cannot depose working leaders.
  config.pre_vote = true;
  config.check_quorum = true;
  config.leader_lease = true;
  // Membership state must survive crashes: a non-durable node would wake
  // up believing the bootstrap roster, forking the configuration history.
  // Elastic clusters therefore always run on the simulated durable disks
  // (config markers ride the WAL, see storage::DurableLog::AppendConfig).
  config.disk.enabled = true;
  config.disk.write_latency = Micros(10);
  config.disk.fsync_latency = Micros(100);
  config.disk.group_commit = true;
  config.disk.fault_seed = seed;
  return config;
}

ChaosPlan SweepPlan(uint64_t seed, bool with_churn) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  if (with_churn) {
    // The default environmental mix plus the membership fault, weighted
    // so roughly a quarter of injections are configuration churn.
    plan.mix = {FaultKind::kCrash,          FaultKind::kPartition,
                FaultKind::kDelayStorm,     FaultKind::kClockSkew,
                FaultKind::kSlowNode,       FaultKind::kMembershipChurn,
                FaultKind::kMembershipChurn};
  }
  return plan;
}

/// Post-run check executed inside the cell, while the Cluster is alive:
/// membership ended active, non-joint, with the final leader a voter of a
/// roster that is at least quorate — and the run actually exercised the
/// config-change machinery.
std::string CheckMembershipState(int min_voters, uint64_t min_changes,
                                 ChaosRunner& runner,
                                 const ChaosReport& report) {
  harness::Cluster* cluster = runner.cluster();
  raft::RaftNode* leader = cluster->leader();
  if (leader == nullptr) return "no leader at quiescence";
  raft::MembershipEngine* membership = leader->membership();
  if (!membership->active()) return "membership engine dormant";
  const raft::Configuration& config = membership->config();
  if (config.joint()) {
    return "joint window still open at quiescence: " + config.Encode();
  }
  if (static_cast<int>(config.voters.size()) < min_voters) {
    return "final roster " + config.Encode() + " below " +
           std::to_string(min_voters) + " voters";
  }
  if (report.config_changes < min_changes) {
    return "only " + std::to_string(report.config_changes) +
           " config changes committed (wanted >= " +
           std::to_string(min_changes) + ")";
  }
  if (!cluster->group(0)->CheckLogMatching().ok()) {
    return "log matching violated";
  }
  if (!cluster->group(0)->CheckCommittedPrefixes().ok()) {
    return "committed prefixes diverged";
  }
  return "";
}

void AttachPostmortem(ChaosCell* cell, const char* test) {
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact, scoped per
  // cell so concurrent cells never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    cell->options.postmortem_dir =
        std::string(dir) + "/" + test + "." + cell->name;
  }
}

/// Grow 1 -> 3 -> 5: a singleton bootstrap voter takes traffic alone,
/// then scripted adds (learner join + recovery catch-up + auto-promote)
/// scale the roster out to five voters while the nemesis runs the default
/// environmental mix.
ChaosCell GrowCell(raft::Protocol protocol, uint64_t seed) {
  ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                            : "NbRaft") +
              "GrowSeed" + std::to_string(seed);
  cell.config = ElasticConfig(protocol, seed, /*initial_voters=*/1);
  cell.plan = SweepPlan(seed, /*with_churn=*/false);
  // A singleton voter crashing would stall the group for the whole fault;
  // let the growth path get off the ground before heavy faults.
  cell.plan.max_concurrent_crashes = 1;
  cell.options.rounds = 5;
  cell.options.round_length = Millis(200);
  cell.options.drain = Millis(2000);
  cell.options.membership_plan = {
      {0, MembershipAction::Kind::kAdd, 0, 1},
      {0, MembershipAction::Kind::kAdd, 0, 2},
      {2, MembershipAction::Kind::kAdd, 0, 3},
      {2, MembershipAction::Kind::kAdd, 0, 4},
  };
  AttachPostmortem(&cell, "MembershipChaosSweep");
  // Every scripted add that landed commits at least one config entry; the
  // floor of 2 changes tolerates adds that ran out of retries on hostile
  // seeds while still proving the machinery ran, and the roster must have
  // reached at least 3 voters (1 would mean no promotion ever completed).
  cell.check = [](ChaosRunner& runner, const ChaosReport& report) {
    return CheckMembershipState(/*min_voters=*/3, /*min_changes=*/2, runner,
                                report);
  };
  return cell;
}

/// Shrink-under-churn: five voters, with the kMembershipChurn nemesis
/// yanking non-leader voters out of the configuration mid-fault (re-added
/// as learners on heal) plus a scripted remove and a leadership transfer.
ChaosCell ChurnCell(raft::Protocol protocol, uint64_t seed) {
  ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                            : "NbRaft") +
              "ChurnSeed" + std::to_string(seed);
  cell.config = ElasticConfig(protocol, seed, /*initial_voters=*/5);
  cell.plan = SweepPlan(seed, /*with_churn=*/true);
  cell.options.rounds = 5;
  cell.options.round_length = Millis(200);
  cell.options.drain = Millis(2000);
  cell.options.membership_plan = {
      {1, MembershipAction::Kind::kRemove, 0, 4},
      {3, MembershipAction::Kind::kTransfer, 0, 1},
  };
  AttachPostmortem(&cell, "MembershipChaosSweep");
  cell.check = [](ChaosRunner& runner, const ChaosReport& report) {
    return CheckMembershipState(/*min_voters=*/3, /*min_changes=*/1, runner,
                                report);
  };
  return cell;
}

std::vector<ChaosCell> MatrixCells(uint64_t first_seed, uint64_t last_seed) {
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      cells.push_back(GrowCell(protocol, seed));
      cells.push_back(ChurnCell(protocol, seed));
    }
  }
  return cells;
}

TEST(MembershipChaosSweepTest, FullMatrixSurvivesAndReplaysIdentically) {
  const std::vector<ChaosCell> cells = MatrixCells(1, 5);
  const int workers = sweep::WorkersFromEnv(/*fallback=*/0);
  const ChaosSweepOutcome a = RunChaosSweep(cells, workers);
  EXPECT_TRUE(a.ok()) << a.sweep.Summary();
  for (size_t i = 0; i < a.reports.size(); ++i) {
    const ChaosReport& report = a.reports[i];
    const std::string& name = a.sweep.results[i].name;
    ASSERT_TRUE(a.sweep.results[i].completed)
        << name << ": " << a.sweep.results[i].error;
    EXPECT_TRUE(a.sweep.results[i].ok())
        << name << ": " << a.sweep.results[i].output.detail;
    // Zero safety violations on every seed: this is the acceptance bar —
    // joint consensus must keep every invariant through every change.
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u) << name << ": nemesis injected nothing";
    EXPECT_GT(report.requests_completed, 0u)
        << name << ": workload never converged";
    EXPECT_GT(report.strong_acked, 0u) << name;
    EXPECT_GT(report.config_changes, 0u)
        << name << ": no config change ever committed";
  }

  // Determinism: the same elastic matrix replays to identical bytes —
  // fault schedules (membership churn included), membership counters, the
  // committed-prefix hash, and the merged sweep report.
  const ChaosSweepOutcome b = RunChaosSweep(cells, workers);
  EXPECT_EQ(a.sweep.merged_hash, b.sweep.merged_hash);
  EXPECT_EQ(a.sweep.ToJson(), b.sweep.ToJson());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].fault_fingerprint, b.reports[i].fault_fingerprint)
        << a.sweep.results[i].name;
    ASSERT_EQ(a.reports[i].faults.size(), b.reports[i].faults.size());
    for (size_t f = 0; f < a.reports[i].faults.size(); ++f) {
      EXPECT_EQ(FaultRecordToString(a.reports[i].faults[f]),
                FaultRecordToString(b.reports[i].faults[f]))
          << a.sweep.results[i].name << ": fault schedule diverged at action "
          << f;
    }
    EXPECT_EQ(a.reports[i].config_changes, b.reports[i].config_changes)
        << a.sweep.results[i].name;
    EXPECT_EQ(a.reports[i].learners_promoted, b.reports[i].learners_promoted)
        << a.sweep.results[i].name;
    EXPECT_EQ(a.reports[i].committed_prefix_hash,
              b.reports[i].committed_prefix_hash)
        << a.sweep.results[i].name;
  }
}

TEST(MembershipChaosSweepTest, MergedReportByteIdenticalAcrossWorkerCounts) {
  // Membership changes thread extra scheduling (recovery rounds, retry
  // timers, churn heals) through the simulator — pin that none of it
  // leaks across worker threads: workers {1, 4, max}.
  const std::vector<ChaosCell> cells = MatrixCells(1, 2);
  const ChaosSweepOutcome serial = RunChaosSweep(cells, /*workers=*/1);
  EXPECT_TRUE(serial.ok()) << serial.sweep.Summary();
  const ChaosSweepOutcome four = RunChaosSweep(cells, /*workers=*/4);
  const ChaosSweepOutcome max = RunChaosSweep(cells, /*workers=*/0);
  EXPECT_EQ(serial.sweep.merged_hash, four.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.merged_hash, max.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.ToJson(), four.sweep.ToJson());
  EXPECT_EQ(serial.sweep.ToJson(), max.sweep.ToJson());
}

/// Deterministic (no nemesis) end-to-end elastic lifecycle: grow a
/// singleton to five voters through learner catch-up and auto-promotion,
/// hand leadership over with TimeoutNow, then shrink back — each step
/// observable through the leader's configuration.
TEST(ElasticScaleTest, GrowTransferShrinkLifecycle) {
  harness::Cluster cluster(ElasticConfig(raft::Protocol::kNbRaft, /*seed=*/3,
                                         /*initial_voters=*/1));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  cluster.StartClients();
  cluster.RunFor(Millis(200));

  // Retries an elastic operation until it is accepted (changes collide
  // with each other by design: one at a time).
  const auto eventually = [&cluster](const std::function<bool()>& op) {
    for (int i = 0; i < 200; ++i) {
      if (op()) return true;
      cluster.RunFor(Millis(50));
    }
    return false;
  };
  const auto voters = [&cluster]() -> int {
    raft::RaftNode* leader = cluster.leader();
    if (leader == nullptr) return -1;
    const raft::Configuration& config = leader->membership()->config();
    return config.joint() ? -1 : static_cast<int>(config.voters.size());
  };

  for (int host = 1; host <= 4; ++host) {
    ASSERT_TRUE(eventually([&]() { return cluster.AddNode(host); }))
        << "add " << host << " never accepted";
    // Catch-up + auto-promotion: the learner becomes a voter once its
    // durable prefix is within the promotion lag.
    ASSERT_TRUE(eventually([&]() { return voters() == host + 1; }))
        << "host " << host << " never promoted";
  }
  ASSERT_EQ(voters(), 5);

  raft::RaftNode* old_leader = cluster.leader();
  ASSERT_NE(old_leader, nullptr);
  const int target = old_leader->id() == 1 ? 2 : 1;
  ASSERT_TRUE(eventually([&]() { return cluster.TransferLeadership(target); }));
  ASSERT_TRUE(eventually([&]() {
    raft::RaftNode* leader = cluster.leader();
    return leader != nullptr && leader->id() == target;
  })) << "leadership never moved to " << target;

  ASSERT_TRUE(eventually([&]() { return cluster.RemoveNode(4); }));
  ASSERT_TRUE(eventually([&]() { return voters() == 4; }));
  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_FALSE(leader->membership()->Knows(4));
  // The removed replica went passive: it no longer campaigns.
  EXPECT_NE(cluster.node(4)->role(), raft::Role::kLeader);

  cluster.RunFor(Millis(500));
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
  EXPECT_GT(cluster.Collect().requests_completed, 0u);
  uint64_t promoted = 0;
  uint64_t transfers = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    promoted += cluster.node(i)->stats().learners_promoted;
    transfers += cluster.node(i)->stats().transfers;
  }
  EXPECT_GE(promoted, 4u);
  EXPECT_GE(transfers, 1u);
}

}  // namespace
}  // namespace nbraft::chaos
