// Multi-Raft chaos matrix: four consensus groups co-resident on three
// physical hosts survive randomized fault schedules where every nemesis
// action hits a *host* — crashing one machine kills a replica of all four
// groups at once, a partition splits all four groups the same way, clock
// skew and slow-CPU hit every co-resident replica. Each group's safety
// oracle must stay clean, acknowledged writes must survive, and the whole
// multi-group run must replay bit-identically (checked by running each
// scenario twice).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"

namespace nbraft::chaos {
namespace {

constexpr int kGroups = 4;

harness::ClusterConfig MultiSweepConfig(raft::Protocol protocol,
                                        uint64_t seed) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_groups = kGroups;
  config.num_clients = 2;  // Per group.
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 104729 + 7;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  // Finite per-client workload so the post-heal drain reaches quiescence
  // and every oracle's committed-id accounting stays enumerable.
  config.client_max_requests = 120;
  config.snapshot_threshold = 0;
  // A modest shared-series universe so all groups ingest despite the
  // per-group ShardMap slicing.
  config.workload.series_count = 64;
  return config;
}

ChaosPlan MultiSweepPlan(uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  return plan;
}

ChaosRunner::Options MultiSweepOptions() {
  ChaosRunner::Options options;
  options.rounds = 5;
  options.round_length = Millis(200);
  options.drain = Millis(1500);
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact. Scoped per
  // test case so parallel parameterizations never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    options.postmortem_dir = std::string(dir) + "/" +
                             info->test_suite_name() + "." + info->name();
  }
  return options;
}

class MultiRaftChaosSweepTest
    : public ::testing::TestWithParam<std::tuple<raft::Protocol, uint64_t>> {
};

TEST_P(MultiRaftChaosSweepTest, SeedSurvivesAndReplaysIdentically) {
  const auto [protocol, seed] = GetParam();

  ChaosRunner first(MultiSweepConfig(protocol, seed), MultiSweepPlan(seed),
                    MultiSweepOptions());
  const ChaosReport a = first.Run();
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_GT(a.faults.size(), 0u) << "nemesis injected nothing";
  EXPECT_GT(a.requests_completed, 0u) << "workload never converged";
  EXPECT_GT(a.strong_acked, 0u);

  // Host-scoped blast radius: every group made commit progress even
  // though each fault hit all co-resident replicas simultaneously.
  harness::Cluster* cluster = first.cluster();
  ASSERT_EQ(cluster->num_groups(), kGroups);
  for (int g = 0; g < kGroups; ++g) {
    EXPECT_GT(cluster->CollectGroup(g).requests_completed, 0u)
        << "group " << g << " starved";
    EXPECT_TRUE(cluster->group(g)->CheckLogMatching().ok()) << "group " << g;
    EXPECT_TRUE(cluster->group(g)->CheckCommittedPrefixes().ok())
        << "group " << g;
  }

  // Determinism: the same (config, plan) replays to the identical fault
  // schedule, aggregate stats, summed commit index, and the group-chained
  // committed-prefix hash.
  ChaosRunner second(MultiSweepConfig(protocol, seed), MultiSweepPlan(seed),
                     MultiSweepOptions());
  const ChaosReport b = second.Run();
  EXPECT_EQ(a.fault_fingerprint, b.fault_fingerprint);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(FaultRecordToString(a.faults[i]),
              FaultRecordToString(b.faults[i]))
        << "fault schedule diverged at action " << i;
  }
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.strong_acked, b.strong_acked);
  EXPECT_EQ(a.lost_weak, b.lost_weak);
  EXPECT_EQ(a.terms_observed, b.terms_observed);
  EXPECT_EQ(a.final_commit_index, b.final_commit_index);
  EXPECT_EQ(a.committed_prefix_hash, b.committed_prefix_hash);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MultiRaftChaosSweepTest,
    ::testing::Combine(::testing::Values(raft::Protocol::kRaft,
                                         raft::Protocol::kNbRaft),
                       ::testing::Range<uint64_t>(1, 11)),
    [](const ::testing::TestParamInfo<MultiRaftChaosSweepTest::ParamType>&
           info) {
      const raft::Protocol protocol = std::get<0>(info.param);
      const uint64_t seed = std::get<1>(info.param);
      return std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                           : "NbRaft") +
             "Seed" + std::to_string(seed);
    });

TEST(MultiRaftChaosScopeTest, HostCrashDeposesEveryCoResidentLeader) {
  // Deterministic (no nemesis) check of the fault blast radius itself:
  // crashing one host kills a replica of all four groups, deposing every
  // leader that lived there, and all groups recover after restart.
  harness::Cluster cluster(
      MultiSweepConfig(raft::Protocol::kNbRaft, /*seed=*/3));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));

  const int host = cluster.group(0)->ReplicaOf(cluster.leader(0)->id());
  ASSERT_GE(host, 0);
  int deposed = 0;
  for (int g = 0; g < kGroups; ++g) {
    ASSERT_NE(cluster.leader(g), nullptr);
    if (cluster.group(g)->ReplicaOf(cluster.leader(g)->id()) == host) {
      ++deposed;
    }
  }
  EXPECT_GE(deposed, 1);

  cluster.CrashNode(host);
  for (int g = 0; g < kGroups; ++g) {
    EXPECT_TRUE(cluster.node(g, host)->crashed()) << "group " << g;
  }
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  cluster.RestartNode(host);
  cluster.StartClients();
  cluster.RunFor(Millis(500));
  for (int g = 0; g < kGroups; ++g) {
    EXPECT_TRUE(cluster.group(g)->CheckLogMatching().ok()) << "group " << g;
    EXPECT_GT(cluster.CollectGroup(g).requests_completed, 0u)
        << "group " << g;
  }
}

}  // namespace
}  // namespace nbraft::chaos
