// Multi-Raft chaos matrix through the parallel sweep scheduler: four
// consensus groups co-resident on three physical hosts survive randomized
// fault schedules where every nemesis action hits a *host* — crashing one
// machine kills a replica of all four groups at once, a partition splits
// all four groups the same way, clock skew and slow-CPU hit every
// co-resident replica. Each group's safety oracle must stay clean (the
// per-group checks run inside the cell, while its Cluster is still
// alive), acknowledged writes must survive, and the merged sweep report
// must be byte-identical across worker counts and across a double run.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "harness/cluster.h"
#include "sweep/scheduler.h"

namespace nbraft::chaos {
namespace {

constexpr int kGroups = 4;

harness::ClusterConfig MultiSweepConfig(raft::Protocol protocol,
                                        uint64_t seed) {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_groups = kGroups;
  config.num_clients = 2;  // Per group.
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed * 104729 + 7;
  config.client_backoff_base = Millis(150);
  config.client_backoff_cap = Millis(1200);
  // Finite per-client workload so the post-heal drain reaches quiescence
  // and every oracle's committed-id accounting stays enumerable.
  config.client_max_requests = 120;
  config.snapshot_threshold = 0;
  // A modest shared-series universe so all groups ingest despite the
  // per-group ShardMap slicing.
  config.workload.series_count = 64;
  return config;
}

ChaosPlan MultiSweepPlan(uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.min_gap = Millis(30);
  plan.max_gap = Millis(120);
  plan.min_duration = Millis(50);
  plan.max_duration = Millis(200);
  return plan;
}

/// The host-scoped blast-radius oracle, run inside the cell while the
/// four groups still exist: every group made commit progress even though
/// each fault hit all of its co-resident replicas simultaneously, and
/// every group's log-matching and committed-prefix invariants held.
std::string CheckEveryGroup(ChaosRunner& runner, const ChaosReport&) {
  harness::Cluster* cluster = runner.cluster();
  if (cluster->num_groups() != kGroups) return "wrong group count";
  for (int g = 0; g < kGroups; ++g) {
    if (cluster->CollectGroup(g).requests_completed == 0) {
      return "group " + std::to_string(g) + " starved";
    }
    if (!cluster->group(g)->CheckLogMatching().ok()) {
      return "group " + std::to_string(g) + " log matching violated";
    }
    if (!cluster->group(g)->CheckCommittedPrefixes().ok()) {
      return "group " + std::to_string(g) + " committed prefixes diverged";
    }
  }
  return "";
}

ChaosCell MultiCell(raft::Protocol protocol, uint64_t seed) {
  ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "Raft"
                                                            : "NbRaft") +
              "Seed" + std::to_string(seed);
  cell.config = MultiSweepConfig(protocol, seed);
  cell.plan = MultiSweepPlan(seed);
  cell.options.rounds = 5;
  cell.options.round_length = Millis(200);
  cell.options.drain = Millis(1500);
  // CI sets NBRAFT_POSTMORTEM_DIR so a failing seed leaves its merged
  // flight-recorder dump behind as an uploadable artifact, scoped per
  // cell so concurrent cells never collide.
  if (const char* dir = std::getenv("NBRAFT_POSTMORTEM_DIR")) {
    cell.options.postmortem_dir =
        std::string(dir) + "/MultiRaftChaosSweep." + cell.name;
  }
  cell.check = CheckEveryGroup;
  return cell;
}

std::vector<ChaosCell> MultiMatrixCells(uint64_t first_seed,
                                        uint64_t last_seed) {
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (uint64_t seed = first_seed; seed <= last_seed; ++seed) {
      cells.push_back(MultiCell(protocol, seed));
    }
  }
  return cells;
}

TEST(MultiRaftChaosSweepTest, FullMatrixSurvivesAndReplaysIdentically) {
  const std::vector<ChaosCell> cells = MultiMatrixCells(1, 10);
  const int workers = sweep::WorkersFromEnv(/*fallback=*/0);
  const ChaosSweepOutcome a = RunChaosSweep(cells, workers);
  EXPECT_TRUE(a.ok()) << a.sweep.Summary();
  for (size_t i = 0; i < a.reports.size(); ++i) {
    const ChaosReport& report = a.reports[i];
    const std::string& name = a.sweep.results[i].name;
    ASSERT_TRUE(a.sweep.results[i].completed)
        << name << ": " << a.sweep.results[i].error;
    // The per-group blast-radius checks ran inside the cell; ok() already
    // folds them in — surface the detail on failure.
    EXPECT_TRUE(a.sweep.results[i].ok())
        << name << ": " << a.sweep.results[i].output.detail;
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.faults.size(), 0u) << name << ": nemesis injected nothing";
    EXPECT_GT(report.requests_completed, 0u)
        << name << ": workload never converged";
    EXPECT_GT(report.strong_acked, 0u) << name;
  }

  // Determinism: the same multi-group matrix replays to identical bytes —
  // fault schedules, aggregate stats, the group-chained committed-prefix
  // hash, and the merged sweep report.
  const ChaosSweepOutcome b = RunChaosSweep(cells, workers);
  EXPECT_EQ(a.sweep.merged_hash, b.sweep.merged_hash);
  EXPECT_EQ(a.sweep.ToJson(), b.sweep.ToJson());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].fault_fingerprint, b.reports[i].fault_fingerprint)
        << a.sweep.results[i].name;
    ASSERT_EQ(a.reports[i].faults.size(), b.reports[i].faults.size());
    for (size_t f = 0; f < a.reports[i].faults.size(); ++f) {
      EXPECT_EQ(FaultRecordToString(a.reports[i].faults[f]),
                FaultRecordToString(b.reports[i].faults[f]))
          << a.sweep.results[i].name << ": fault schedule diverged at action "
          << f;
    }
    EXPECT_EQ(a.reports[i].final_commit_index, b.reports[i].final_commit_index);
    EXPECT_EQ(a.reports[i].committed_prefix_hash,
              b.reports[i].committed_prefix_hash);
  }
}

TEST(MultiRaftChaosSweepTest, MergedReportByteIdenticalAcrossWorkerCounts) {
  // Multi-group cells are the heaviest per-task state (4 groups x 3 hosts
  // per simulator) — pin that nothing about group routing or the shared
  // substrate leaks across worker threads: workers {1, 4, max}.
  const std::vector<ChaosCell> cells = MultiMatrixCells(1, 3);
  const ChaosSweepOutcome serial = RunChaosSweep(cells, /*workers=*/1);
  EXPECT_TRUE(serial.ok()) << serial.sweep.Summary();
  const ChaosSweepOutcome four = RunChaosSweep(cells, /*workers=*/4);
  const ChaosSweepOutcome max = RunChaosSweep(cells, /*workers=*/0);
  EXPECT_EQ(serial.sweep.merged_hash, four.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.merged_hash, max.sweep.merged_hash);
  EXPECT_EQ(serial.sweep.ToJson(), four.sweep.ToJson());
  EXPECT_EQ(serial.sweep.ToJson(), max.sweep.ToJson());
}

TEST(MultiRaftChaosScopeTest, HostCrashDeposesEveryCoResidentLeader) {
  // Deterministic (no nemesis) check of the fault blast radius itself:
  // crashing one host kills a replica of all four groups, deposing every
  // leader that lived there, and all groups recover after restart.
  harness::Cluster cluster(
      MultiSweepConfig(raft::Protocol::kNbRaft, /*seed=*/3));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));

  const int host = cluster.group(0)->ReplicaOf(cluster.leader(0)->id());
  ASSERT_GE(host, 0);
  int deposed = 0;
  for (int g = 0; g < kGroups; ++g) {
    ASSERT_NE(cluster.leader(g), nullptr);
    if (cluster.group(g)->ReplicaOf(cluster.leader(g)->id()) == host) {
      ++deposed;
    }
  }
  EXPECT_GE(deposed, 1);

  cluster.CrashNode(host);
  for (int g = 0; g < kGroups; ++g) {
    EXPECT_TRUE(cluster.node(g, host)->crashed()) << "group " << g;
  }
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  cluster.RestartNode(host);
  cluster.StartClients();
  cluster.RunFor(Millis(500));
  for (int g = 0; g < kGroups; ++g) {
    EXPECT_TRUE(cluster.group(g)->CheckLogMatching().ok()) << "group " << g;
    EXPECT_GT(cluster.CollectGroup(g).requests_completed, 0u)
        << "group " << g;
  }
}

}  // namespace
}  // namespace nbraft::chaos
