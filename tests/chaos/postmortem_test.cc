// The automatic flight-recorder post-mortem: a deliberately induced
// safety violation (simulated memory corruption of a committed follower
// entry, injected through the mid-run hook) makes the ChaosRunner dump a
// merged, virtual-time-ordered multi-node journal the moment the oracle
// fires — and the dump is byte-identical across reruns of the same seed.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "harness/cluster.h"
#include "raft/raft_node.h"
#include "storage/raft_log.h"

namespace nbraft::chaos {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

harness::ClusterConfig PostmortemConfig() {
  harness::ClusterConfig config;
  config.num_nodes = 3;
  config.num_clients = 3;
  config.protocol = raft::Protocol::kNbRaft;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = 4242;
  config.client_max_requests = 200;
  config.snapshot_threshold = 0;
  return config;
}

// A plan whose first nemesis action lands long after the run ends: the
// violation must come from the injected corruption, nothing else.
ChaosPlan QuietPlan() {
  ChaosPlan plan;
  plan.seed = 7;
  plan.min_gap = Seconds(30);
  plan.max_gap = Seconds(40);
  return plan;
}

ChaosRunner::Options PostmortemOptions(const std::string& dir) {
  ChaosRunner::Options options;
  options.rounds = 3;
  options.round_length = Millis(200);
  options.drain = Millis(500);
  options.postmortem_dir = dir;
  options.postmortem_lookback = Seconds(2);
  return options;
}

/// Flips one committed entry's request id on the first follower whose
/// commit point is inside its physical log — the in-memory image now
/// disagrees with the rest of the cluster on a committed index, which is
/// exactly the State Machine Safety violation the oracle hunts.
void CorruptCommittedFollowerEntry(harness::Cluster* cluster) {
  raft::RaftNode* leader = cluster->leader();
  for (int n = 0; n < cluster->num_nodes(); ++n) {
    raft::RaftNode* node = cluster->node(n);
    if (node == leader || node->crashed()) continue;
    storage::RaftLog& log = node->log();
    const storage::LogIndex target = node->commit_index();
    if (target < log.FirstIndex() || target > log.LastIndex()) continue;

    // Copy the suffix, rewrite it with one bit of history changed. Terms
    // are untouched so the log's own continuity checks keep passing — the
    // "corruption" is purely in the replicated content.
    std::vector<storage::LogEntry> suffix;
    for (storage::LogIndex i = target; i <= log.LastIndex(); ++i) {
      suffix.push_back(log.AtUnchecked(i));
    }
    ASSERT_TRUE(log.TruncateSuffix(target).ok());
    suffix.front().request_id ^= 0xDEADBEEF;
    for (storage::LogEntry& entry : suffix) {
      log.Append(std::move(entry));
    }
    return;
  }
  FAIL() << "no follower with a committed in-log entry to corrupt";
}

ChaosReport RunCorruptedScenario(const std::string& dir) {
  ChaosRunner runner(PostmortemConfig(), QuietPlan(),
                     PostmortemOptions(dir));
  runner.set_mid_run_hook([](harness::Cluster* cluster, int round) {
    if (round == 1) CorruptCommittedFollowerEntry(cluster);
  });
  return runner.Run();
}

TEST(PostmortemTest, InducedViolationDumpsMultiNodeTimeOrderedJournal) {
  const std::string dir = ::testing::TempDir() + "/postmortem_run";
  std::filesystem::remove_all(dir);
  const ChaosReport report = RunCorruptedScenario(dir);

  ASSERT_FALSE(report.ok()) << "corruption was not detected";
  ASSERT_FALSE(report.postmortem_jsonl.empty());
  ASSERT_FALSE(report.postmortem_timeline.empty());
  ASSERT_TRUE(std::filesystem::exists(report.postmortem_jsonl));
  ASSERT_TRUE(std::filesystem::exists(report.postmortem_timeline));

  const std::string body = Slurp(report.postmortem_jsonl);
  std::istringstream lines(body);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find("\"type\":\"meta\""), std::string::npos);

  std::set<int> nodes_seen;
  int64_t last_at = -1;
  bool saw_violation = false;
  while (std::getline(lines, line)) {
    // Events are in global record order, so virtual time never regresses.
    const size_t at_pos = line.find("\"at_ns\":");
    ASSERT_NE(at_pos, std::string::npos) << line;
    const int64_t at = std::stoll(line.substr(at_pos + 8));
    EXPECT_GE(at, last_at) << "time went backwards: " << line;
    last_at = at;

    const size_t node_pos = line.find("\"node\":");
    ASSERT_NE(node_pos, std::string::npos) << line;
    const int node = std::stoi(line.substr(node_pos + 7));
    if (node >= 0) nodes_seen.insert(node);

    if (line.find("chaos.invariant_violate") != std::string::npos) {
      saw_violation = true;
    }
  }
  // The window spans the violation and carries events from every replica.
  EXPECT_TRUE(saw_violation);
  EXPECT_GE(nodes_seen.size(), 3u) << "post-mortem covers too few nodes";

  // The human-readable timeline decoded the same story.
  const std::string timeline = Slurp(report.postmortem_timeline);
  EXPECT_NE(timeline.find("INVARIANT VIOLATION"), std::string::npos);
  EXPECT_NE(timeline.find("node 0"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(PostmortemTest, SameSeedProducesByteIdenticalDumps) {
  const std::string dir_a = ::testing::TempDir() + "/postmortem_a";
  const std::string dir_b = ::testing::TempDir() + "/postmortem_b";
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);

  const ChaosReport a = RunCorruptedScenario(dir_a);
  const ChaosReport b = RunCorruptedScenario(dir_b);
  ASSERT_FALSE(a.postmortem_jsonl.empty());
  ASSERT_FALSE(b.postmortem_jsonl.empty());

  EXPECT_EQ(Slurp(a.postmortem_jsonl), Slurp(b.postmortem_jsonl));
  EXPECT_EQ(Slurp(a.postmortem_timeline), Slurp(b.postmortem_timeline));
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(PostmortemTest, CleanRunLeavesNoDump) {
  const std::string dir = ::testing::TempDir() + "/postmortem_clean";
  std::filesystem::remove_all(dir);
  ChaosRunner::Options options = PostmortemOptions(dir);
  options.rounds = 2;
  ChaosRunner runner(PostmortemConfig(), QuietPlan(), options);
  const ChaosReport report = runner.Run();

  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.postmortem_jsonl.empty());
  EXPECT_TRUE(report.postmortem_timeline.empty());
  // The directory is only created on first violation.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

}  // namespace
}  // namespace nbraft::chaos
