#include "common/hash.h"

#include <gtest/gtest.h>

#include <string>

namespace nbraft {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(input)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalEqualsOneShot) {
  const std::string data =
      "The quick brown fox jumps over the lazy dog, repeatedly and at odd "
      "block boundaries to stress the buffering logic.";
  for (size_t chunk = 1; chunk <= 70; chunk += 7) {
    Sha256 h;
    for (size_t off = 0; off < data.size(); off += chunk) {
      h.Update(data.substr(off, chunk));
    }
    EXPECT_EQ(Sha256::ToHex(h.Finish()),
              Sha256::ToHex(Sha256::Hash(data)))
        << "chunk size " << chunk;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update("garbage");
  h.Reset();
  h.Update("abc");
  EXPECT_EQ(Sha256::ToHex(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55, 56, 63, 64, 65 bytes straddle the padding edge cases.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string input(len, 'x');
    Sha256 incremental;
    incremental.Update(input.substr(0, len / 2));
    incremental.Update(input.substr(len / 2));
    EXPECT_EQ(Sha256::ToHex(incremental.Finish()),
              Sha256::ToHex(Sha256::Hash(input)))
        << "length " << len;
  }
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8a9136aau);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62a8ab43u);
  std::string ascending;
  for (int i = 0; i < 32; ++i) ascending.push_back(static_cast<char>(i));
  EXPECT_EQ(Crc32c(ascending), 0x46dd794eu);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32cTest, DetectsBitFlip) {
  std::string data = "sensor-data-batch-00172";
  const uint32_t original = Crc32c(data);
  data[5] ^= 0x01;
  EXPECT_NE(Crc32c(data), original);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const std::string a = "first half / ";
  const std::string b = "second half";
  const uint32_t whole = Crc32c(a + b);
  // The pre/post inversion makes Extend compose across chunks.
  uint32_t split = Crc32cExtend(0, a.data(), a.size());
  split = Crc32cExtend(split, b.data(), b.size());
  EXPECT_EQ(split, whole);
}

TEST(Fnv1aTest, StableAndDistinct) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64("device.42.temp"), Fnv1a64("device.42.temp"));
}

}  // namespace
}  // namespace nbraft
