#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace nbraft {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng root1(99);
  Rng root2(99);
  Rng child1 = root1.Fork();
  Rng child2 = root2.Fork();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child1.Next(), child2.Next());
  }
}

class RngBoundedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundedTest, NextBoundedStaysInRange) {
  Rng rng(7);
  const uint64_t bound = GetParam();
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedTest,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 1000,
                                           1ull << 32, (1ull << 63) + 5));

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(23);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextExponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(1);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[9] * 5);
  EXPECT_GT(counts[0], counts[99] * 20);
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(7, 1.5);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 2.0);
  Rng rng(9);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace nbraft
