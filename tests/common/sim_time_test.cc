#include "common/sim_time.h"

#include <gtest/gtest.h>

#include "raft/types.h"

namespace nbraft {
namespace {

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(Micros(1), 1000 * Nanos(1));
  EXPECT_EQ(Millis(1), 1000 * Micros(1));
  EXPECT_EQ(Seconds(1), 1000 * Millis(1));
  EXPECT_EQ(Seconds(2) + Millis(500), 2'500'000'000);
}

TEST(SimTimeTest, ToSecondsAndMillis) {
  EXPECT_DOUBLE_EQ(ToSeconds(Millis(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(Micros(2500)), 2.5);
  EXPECT_DOUBLE_EQ(ToSeconds(0), 0.0);
}

TEST(SimTimeTest, FormatDurationPicksUnit) {
  EXPECT_EQ(FormatDuration(Nanos(15)), "15ns");
  EXPECT_EQ(FormatDuration(Micros(2)), "2.000us");
  EXPECT_EQ(FormatDuration(Millis(3) + Micros(250)), "3.250ms");
  EXPECT_EQ(FormatDuration(Seconds(1) + Millis(500)), "1.500s");
}

TEST(SimTimeTest, FormatNegativeDurations) {
  EXPECT_EQ(FormatDuration(-Millis(2)), "-2.000ms");
  EXPECT_EQ(FormatDuration(-Nanos(5)), "-5ns");
}

TEST(ProtocolNamesTest, RoleAndStateNames) {
  using namespace raft;
  EXPECT_EQ(RoleName(Role::kFollower), "follower");
  EXPECT_EQ(RoleName(Role::kCandidate), "candidate");
  EXPECT_EQ(RoleName(Role::kLeader), "leader");
  EXPECT_EQ(AcceptStateName(AcceptState::kStrongAccept), "STRONG_ACCEPT");
  EXPECT_EQ(AcceptStateName(AcceptState::kWeakAccept), "WEAK_ACCEPT");
  EXPECT_EQ(AcceptStateName(AcceptState::kLogMismatch), "LOG_MISMATCH");
  EXPECT_EQ(AcceptStateName(AcceptState::kLeaderChanged), "LEADER_CHANGED");
  EXPECT_EQ(AcceptStateName(AcceptState::kNotLeader), "NOT_LEADER");
}

}  // namespace
}  // namespace nbraft
