#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace nbraft {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotLeader("x").code(), StatusCode::kNotLeader);
  EXPECT_EQ(Status::LeaderChanged("x").code(), StatusCode::kLeaderChanged);
  EXPECT_EQ(Status::LogMismatch("x").code(), StatusCode::kLogMismatch);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotLeader("try node 2");
  EXPECT_EQ(s.ToString(), "NotLeader: try node 2");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::NotLeader("").IsNotLeader());
  EXPECT_TRUE(Status::Timeout("").IsTimeout());
  EXPECT_TRUE(Status::LogMismatch("").IsLogMismatch());
  EXPECT_FALSE(Status::Ok().IsNotFound());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Timeout("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kLogMismatch), "LogMismatch");
  EXPECT_EQ(StatusCodeToString(StatusCode::kLeaderChanged), "LeaderChanged");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH((void)r.value(), "Result::value");
}

TEST(ResultDeathTest, OkStatusRejected) {
  EXPECT_DEATH((Result<int>(Status::Ok())), "OK status");
}

}  // namespace
}  // namespace nbraft
