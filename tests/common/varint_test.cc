#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace nbraft {
namespace {

class VarintRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTripTest, Unsigned) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  std::string_view in(buf);
  uint64_t out = 0;
  ASSERT_TRUE(GetVarint64(&in, &out));
  EXPECT_EQ(out, GetParam());
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTripTest,
    ::testing::Values(0, 1, 127, 128, 129, 255, 256, 16383, 16384,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) + 123,
                      std::numeric_limits<uint64_t>::max()));

class SignedVarintTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintTest, RoundTrip) {
  std::string buf;
  PutVarintSigned64(&buf, GetParam());
  std::string_view in(buf);
  int64_t out = 0;
  ASSERT_TRUE(GetVarintSigned64(&in, &out));
  EXPECT_EQ(out, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, SignedVarintTest,
    ::testing::Values(0, 1, -1, 63, -64, 64, -65, 1'000'000, -1'000'000,
                      std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(VarintTest, SmallValuesAreShort) {
  std::string buf;
  PutVarint64(&buf, 5);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 300);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VarintTest, ZigZagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (int64_t v : {0ll, 1ll, -1ll, 123456ll, -987654ll}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 42);
  for (size_t keep = 0; keep + 1 < buf.size(); ++keep) {
    std::string_view in(buf.data(), keep);
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "kept " << keep;
  }
}

TEST(VarintTest, OverlongInputFails) {
  // 11 continuation bytes exceed a 64-bit value.
  std::string buf(11, '\x80');
  std::string_view in(buf);
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(VarintTest, SequentialDecodingAdvances) {
  std::string buf;
  PutVarint64(&buf, 10);
  PutVarint64(&buf, 2000);
  PutVarint64(&buf, 300000);
  std::string_view in(buf);
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  ASSERT_TRUE(GetVarint64(&in, &a));
  ASSERT_TRUE(GetVarint64(&in, &b));
  ASSERT_TRUE(GetVarint64(&in, &c));
  EXPECT_EQ(a, 10u);
  EXPECT_EQ(b, 2000u);
  EXPECT_EQ(c, 300000u);
  EXPECT_TRUE(in.empty());
}

TEST(FixedTest, RoundTrip32And64) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefull);
  EXPECT_EQ(buf.size(), 12u);
  std::string_view in(buf);
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
}

TEST(FixedTest, TruncatedFails) {
  std::string buf;
  PutFixed32(&buf, 1);
  std::string_view in(buf.data(), 3);
  uint32_t v = 0;
  EXPECT_FALSE(GetFixed32(&in, &v));
  std::string_view in64(buf);
  uint64_t v64 = 0;
  EXPECT_FALSE(GetFixed64(&in64, &v64));
}

TEST(VarintTest, RandomizedRoundTripProperty) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t value = rng.Next() >> rng.NextBounded(64);
    std::string buf;
    PutVarint64(&buf, value);
    std::string_view in(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    ASSERT_EQ(out, value);
  }
}

}  // namespace
}  // namespace nbraft
