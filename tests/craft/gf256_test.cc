#include "craft/gf256.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace nbraft::craft {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(Gf256::Add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(Gf256::Sub(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(Gf256::Add(5, 5), 0);
}

TEST(Gf256Test, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(Gf256::Mul(1, static_cast<uint8_t>(a)), a);
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), 0), 0);
  }
}

// Reference carry-less multiplication with reduction by x^8+x^4+x^3+x^2+1.
uint8_t SlowMul(uint8_t a, uint8_t b) {
  uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    const bool carry = (a & 0x80) != 0;
    a = static_cast<uint8_t>(a << 1);
    if (carry) a ^= 0x1d;  // Low byte of 0x11d.
    b >>= 1;
  }
  return result;
}

TEST(Gf256Test, TableMulMatchesReferenceForAllPairs) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)),
                SlowMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256Test, MultiplicationCommutative) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.Next());
    const uint8_t b = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
  }
}

TEST(Gf256Test, MultiplicationAssociative) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.Next());
    const uint8_t b = static_cast<uint8_t>(rng.Next());
    const uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(Gf256::Mul(Gf256::Mul(a, b), c),
              Gf256::Mul(a, Gf256::Mul(b, c)));
  }
}

TEST(Gf256Test, DistributesOverAddition) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.Next());
    const uint8_t b = static_cast<uint8_t>(rng.Next());
    const uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(Gf256::Mul(a, Gf256::Add(b, c)),
              Gf256::Add(Gf256::Mul(a, b), Gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const uint8_t inv = Gf256::Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<uint8_t>(a), inv), 1)
        << "a = " << a;
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next());
    if (b == 0) b = 1;
    EXPECT_EQ(Gf256::Div(Gf256::Mul(a, b), b), a);
  }
}

TEST(Gf256Test, ExpMatchesRepeatedMultiplication) {
  for (int base = 1; base < 256; base += 17) {
    uint8_t acc = 1;
    for (int p = 0; p < 10; ++p) {
      EXPECT_EQ(Gf256::Exp(static_cast<uint8_t>(base), p), acc)
          << "base " << base << " power " << p;
      acc = Gf256::Mul(acc, static_cast<uint8_t>(base));
    }
  }
}

TEST(Gf256Test, ExpOfZero) {
  EXPECT_EQ(Gf256::Exp(0, 0), 1);
  EXPECT_EQ(Gf256::Exp(0, 5), 0);
}

TEST(Gf256DeathTest, DivisionByZeroAborts) {
  EXPECT_DEATH((void)Gf256::Div(5, 0), "");
  EXPECT_DEATH((void)Gf256::Inv(0), "");
}

}  // namespace
}  // namespace nbraft::craft
