#include "craft/reed_solomon.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"

namespace nbraft::craft {
namespace {

std::string RandomData(Rng* rng, size_t len) {
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng->Next());
  return out;
}

TEST(ReedSolomonTest, BasicRoundTripAllShards) {
  ReedSolomon rs(2, 1);
  const std::string data = "hello, erasure-coded raft!";
  auto shards = rs.Encode(data);
  ASSERT_EQ(shards.size(), 3u);
  std::vector<std::optional<std::string>> in(shards.begin(), shards.end());
  auto decoded = rs.Decode(in, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(ReedSolomonTest, SystematicDataShardsArePlainSlices) {
  ReedSolomon rs(2, 2);
  const std::string data = "abcdefgh";  // Shard size 4.
  auto shards = rs.Encode(data);
  EXPECT_EQ(shards[0], "abcd");
  EXPECT_EQ(shards[1], "efgh");
}

TEST(ReedSolomonTest, ShardSizeRoundsUp) {
  ReedSolomon rs(3, 2);
  EXPECT_EQ(rs.ShardSize(10), 4u);
  EXPECT_EQ(rs.ShardSize(9), 3u);
  EXPECT_EQ(rs.ShardSize(0), 0u);
}

// The CRaft property: ANY k of the n shards reconstruct the entry.
class RsAnySubsetTest
    : public ::testing::TestWithParam<std::tuple<int, int, size_t>> {};

TEST_P(RsAnySubsetTest, AnyKOfNReconstructs) {
  const auto [k, m, len] = GetParam();
  ReedSolomon rs(k, m);
  Rng rng(static_cast<uint64_t>(k * 1000 + m * 100) + len);
  const std::string data = RandomData(&rng, len);
  const auto shards = rs.Encode(data);
  const int n = k + m;

  // Enumerate all subsets of size k (n is small in these cases).
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (__builtin_popcount(mask) != k) continue;
    std::vector<std::optional<std::string>> subset(
        static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset[static_cast<size_t>(i)] = shards[i];
    }
    auto decoded = rs.Decode(subset, data.size());
    ASSERT_TRUE(decoded.ok()) << "mask " << mask;
    ASSERT_EQ(decoded.value(), data) << "mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RsAnySubsetTest,
    ::testing::Values(std::make_tuple(2, 1, 100),    // 3-replica CRaft.
                      std::make_tuple(2, 1, 4096),   // Paper default size.
                      std::make_tuple(3, 2, 1000),   // 5-replica CRaft.
                      std::make_tuple(4, 3, 257),    // 7 replicas, odd len.
                      std::make_tuple(5, 4, 64),     // 9 replicas.
                      std::make_tuple(1, 2, 50),     // Degenerate k=1.
                      std::make_tuple(2, 0, 33)));   // No parity.

TEST(ReedSolomonTest, ExtraShardsBeyondKAreFine) {
  ReedSolomon rs(3, 2);
  Rng rng(5);
  const std::string data = RandomData(&rng, 500);
  auto shards = rs.Encode(data);
  std::vector<std::optional<std::string>> all(shards.begin(), shards.end());
  auto decoded = rs.Decode(all, data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), data);
}

TEST(ReedSolomonTest, TooFewShardsFails) {
  ReedSolomon rs(3, 2);
  Rng rng(6);
  const std::string data = RandomData(&rng, 100);
  auto shards = rs.Encode(data);
  std::vector<std::optional<std::string>> two(5);
  two[0] = shards[0];
  two[4] = shards[4];
  EXPECT_FALSE(rs.Decode(two, data.size()).ok());
}

TEST(ReedSolomonTest, WrongShardVectorSizeFails) {
  ReedSolomon rs(2, 1);
  std::vector<std::optional<std::string>> wrong(2);
  EXPECT_FALSE(rs.Decode(wrong, 10).ok());
}

TEST(ReedSolomonTest, MismatchedShardSizeFails) {
  ReedSolomon rs(2, 1);
  auto shards = rs.Encode("0123456789");
  std::vector<std::optional<std::string>> in(shards.begin(), shards.end());
  (*in[1]) += "extra";
  EXPECT_FALSE(rs.Decode(in, 10).ok());
}

TEST(ReedSolomonTest, EmptyPayload) {
  ReedSolomon rs(2, 1);
  auto shards = rs.Encode("");
  for (const auto& s : shards) EXPECT_TRUE(s.empty());
  std::vector<std::optional<std::string>> in(shards.begin(), shards.end());
  auto decoded = rs.Decode(in, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ReedSolomonTest, PaddedLengthsRestoreExactBytes) {
  ReedSolomon rs(3, 1);
  for (size_t len = 1; len <= 20; ++len) {
    Rng rng(len);
    const std::string data = RandomData(&rng, len);
    auto shards = rs.Encode(data);
    std::vector<std::optional<std::string>> in(shards.begin(), shards.end());
    in[0].reset();  // Drop one data shard: force real decoding.
    auto decoded = rs.Decode(in, len);
    ASSERT_TRUE(decoded.ok()) << "len " << len;
    ASSERT_EQ(decoded.value(), data) << "len " << len;
  }
}

TEST(ReedSolomonTest, RandomizedErasurePatterns) {
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    const int k = 2 + static_cast<int>(rng.NextBounded(4));
    const int m = 1 + static_cast<int>(rng.NextBounded(3));
    ReedSolomon rs(k, m);
    const std::string data = RandomData(&rng, 1 + rng.NextBounded(2000));
    auto shards = rs.Encode(data);
    // Erase exactly m random shards.
    std::vector<int> order(static_cast<size_t>(k + m));
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
    rng.Shuffle(&order);
    std::vector<std::optional<std::string>> in(shards.begin(), shards.end());
    for (int i = 0; i < m; ++i) in[static_cast<size_t>(order[i])].reset();
    auto decoded = rs.Decode(in, data.size());
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value(), data);
  }
}

}  // namespace
}  // namespace nbraft::craft
