// Randomized fault-schedule integration tests: the Raft safety properties
// must hold under leader crashes, restarts, and partitions, for every
// protocol variant and across seeds.

#include <gtest/gtest.h>

#include <tuple>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::harness {
namespace {

using raft::Protocol;
using raft_test::SmallConfig;

void ExpectSafety(Cluster* cluster, const char* where) {
  const Status matching = cluster->CheckLogMatching();
  EXPECT_TRUE(matching.ok()) << where << ": " << matching.ToString();
  const Status prefixes = cluster->CheckCommittedPrefixes();
  EXPECT_TRUE(prefixes.ok()) << where << ": " << prefixes.ToString();
}

class FaultScheduleTest
    : public ::testing::TestWithParam<std::tuple<Protocol, uint64_t>> {};

TEST_P(FaultScheduleTest, SafetyHoldsUnderCrashRestartSchedule) {
  const auto [protocol, seed] = GetParam();
  ClusterConfig config = SmallConfig(protocol, 3, 4, seed);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();

  nbraft::Rng rng(seed * 31 + 7);
  for (int round = 0; round < 8; ++round) {
    cluster.RunFor(Millis(300));
    ExpectSafety(&cluster, "mid-run");
    switch (rng.NextBounded(4)) {
      case 0: {  // Crash the leader.
        cluster.CrashLeader();
        break;
      }
      case 1: {  // Crash a random follower.
        const int victim = static_cast<int>(rng.NextBounded(3));
        if (!cluster.node(victim)->crashed() &&
            cluster.node(victim)->role() != raft::Role::kLeader) {
          cluster.CrashNode(victim);
        }
        break;
      }
      case 2: {  // Restart everyone who is down.
        for (int i = 0; i < 3; ++i) {
          if (cluster.node(i)->crashed()) cluster.RestartNode(i);
        }
        break;
      }
      case 3:  // Quiet round.
        break;
    }
  }
  // Heal and drain.
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->crashed()) cluster.RestartNode(i);
  }
  cluster.StopAllClients();
  cluster.RunFor(Seconds(3));
  ExpectSafety(&cluster, "after heal");

  // Progress: something committed despite the faults.
  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->commit_index(), 10);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FaultScheduleTest,
    ::testing::Combine(::testing::Values(Protocol::kRaft, Protocol::kNbRaft,
                                         Protocol::kNbCRaft),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<Protocol, uint64_t>>&
           info) {
      std::string name(raft::ProtocolName(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(PartitionTest, IsolatedLeaderStepsDownAndRejoins) {
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, 17);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  raft::RaftNode* old_leader = cluster.leader();
  const net::NodeId isolated = old_leader->id();
  cluster.network()->Isolate(isolated, true);
  cluster.RunFor(Seconds(3));

  // A new leader emerges on the majority side.
  raft::RaftNode* new_leader = cluster.leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->id(), isolated);

  // Heal: the old leader must adopt the new term and converge.
  cluster.network()->Isolate(isolated, false);
  cluster.StopAllClients();
  cluster.RunFor(Seconds(3));
  EXPECT_EQ(old_leader->role(), raft::Role::kFollower);
  EXPECT_EQ(old_leader->current_term(), new_leader->current_term());
  ExpectSafety(&cluster, "after partition heal");
}

TEST(PartitionTest, MinoritySideMakesNoProgress) {
  ClusterConfig config = SmallConfig(Protocol::kRaft, 5, 4, 19);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  // Cut nodes {3, 4} off from {0, 1, 2}.
  for (int a : {0, 1, 2}) {
    for (int b : {3, 4}) {
      cluster.network()->SetLinkCut(a, b, true);
    }
  }
  cluster.RunFor(Seconds(2));
  const storage::LogIndex minority_commit =
      std::max(cluster.node(3)->commit_index(),
               cluster.node(4)->commit_index());
  cluster.RunFor(Seconds(1));
  EXPECT_LE(std::max(cluster.node(3)->commit_index(),
                     cluster.node(4)->commit_index()),
            minority_commit + 1)
      << "the minority partition must not advance commits";

  for (int a : {0, 1, 2}) {
    for (int b : {3, 4}) {
      cluster.network()->SetLinkCut(a, b, false);
    }
  }
  cluster.StopAllClients();
  cluster.RunFor(Seconds(3));
  ExpectSafety(&cluster, "after partition");
}

TEST(LossyNetworkTest, ProgressDespiteMessageLoss) {
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, 23);
  config.network.drop_probability = 0.02;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(20)));
  cluster.StartClients();
  cluster.RunFor(Seconds(2));
  const ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.requests_completed, 20u);
  ExpectSafety(&cluster, "lossy network");
}

TEST(CrashRestartTest, RestartedNodeCatchesUp) {
  ClusterConfig config = SmallConfig(Protocol::kRaft, 3, 4, 29);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  int victim = -1;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() != raft::Role::kLeader) {
      victim = i;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  cluster.CrashNode(victim);
  cluster.RunFor(Seconds(1));
  const storage::LogIndex at_restart =
      cluster.node(victim)->log().LastIndex();
  cluster.RestartNode(victim);
  cluster.StopAllClients();
  cluster.RunFor(Seconds(3));

  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(cluster.node(victim)->log().LastIndex(), at_restart)
      << "restarted node must receive the entries it missed";
  EXPECT_GE(cluster.node(victim)->log().LastIndex(),
            leader->commit_index());
  ExpectSafety(&cluster, "after catch-up");
}

TEST(CrashRestartTest, RestartedFollowerCatchesUpAcrossSnapshotBoundary) {
  // An NB-Raft follower crashes mid-window, stays down long enough for the
  // leader to compact the entries it missed into a snapshot, and must come
  // back via InstallSnapshot + tail replication — ending log-matched with
  // the rest of the cluster.
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, 31);
  config.snapshot_threshold = 200;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  int victim = -1;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() != raft::Role::kLeader) {
      victim = i;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  cluster.CrashNode(victim);
  const storage::LogIndex at_crash = cluster.node(victim)->log().LastIndex();
  cluster.RunFor(Millis(1500));

  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  ASSERT_GT(leader->log().FirstIndex(), at_crash + 1)
      << "the workload must outrun the crashed follower past a snapshot "
         "boundary for this test to mean anything";

  cluster.RestartNode(victim);
  cluster.StopAllClients();
  cluster.RunFor(Seconds(8));

  leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GE(cluster.node(victim)->stats().snapshots_installed, 1u)
      << "catch-up skipped the snapshot the compacted prefix requires";
  EXPECT_GE(cluster.node(victim)->log().LastIndex(), leader->commit_index());
  EXPECT_GE(cluster.node(victim)->commit_index(), leader->commit_index());
  ExpectSafety(&cluster, "after snapshot catch-up");
}

TEST(PartitionTest, DeafLeaderStallsAndRecoversOnHeal) {
  // One-way cuts make the leader deaf: its appends and heartbeats still
  // reach the followers (so no election fires), but every response is
  // dropped. Commit must stall — acks cannot arrive — and resume after the
  // heal without a term change or safety violation.
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, 37);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  const net::NodeId leader_id = leader->id();
  const storage::Term term_at_cut = leader->current_term();
  for (int i = 0; i < 3; ++i) {
    if (i != leader_id) cluster.network()->SetOneWayCut(i, leader_id, true);
  }
  const storage::LogIndex commit_at_cut = leader->commit_index();
  cluster.RunFor(Seconds(1));

  // Outbound heartbeats kept the followers loyal...
  EXPECT_EQ(cluster.leader(), leader);
  EXPECT_EQ(leader->current_term(), term_at_cut);
  // ... but without acks nothing past the in-flight tail can commit.
  EXPECT_LE(leader->commit_index(), commit_at_cut + 10)
      << "a deaf leader must not advance its commit index";

  for (int i = 0; i < 3; ++i) {
    if (i != leader_id) cluster.network()->SetOneWayCut(i, leader_id, false);
  }
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(2));

  EXPECT_EQ(leader->current_term(), term_at_cut)
      << "one-way deafness should not force an election";
  EXPECT_GT(leader->commit_index(), commit_at_cut + 10)
      << "healing the return path must unblock replication";
  ExpectSafety(&cluster, "after deaf-leader heal");
}

}  // namespace
}  // namespace nbraft::harness
