// Whole-cluster properties: bit-identical replay for equal seeds (the
// foundation of the simulation-testing approach) and soundness of client
// acknowledgements against the replicated log.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::harness {
namespace {

using raft::Protocol;
using raft_test::SmallConfig;

struct RunSummary {
  std::vector<std::pair<storage::LogIndex, uint64_t>> committed;
  uint64_t completed = 0;
  uint64_t weak = 0;
  uint64_t messages = 0;
  SimTime final_time = 0;
};

RunSummary RunOnce(const ClusterConfig& config, bool with_crash) {
  Cluster cluster(config);
  cluster.Start();
  EXPECT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(400));
  if (with_crash) {
    cluster.CrashLeader();
    EXPECT_TRUE(cluster.AwaitLeader(Seconds(10)));
    cluster.RunFor(Millis(400));
  }
  cluster.StopAllClients();
  cluster.RunFor(Millis(300));

  RunSummary out;
  raft::RaftNode* leader = cluster.leader();
  EXPECT_NE(leader, nullptr);
  const auto& log = leader->log();
  for (storage::LogIndex i = log.FirstIndex();
       i <= leader->commit_index() && i <= log.LastIndex(); ++i) {
    out.committed.emplace_back(i, log.AtUnchecked(i).request_id);
  }
  const ClusterStats stats = cluster.Collect();
  out.completed = stats.requests_completed;
  out.weak = stats.weak_accepts;
  out.messages = cluster.network()->messages_sent();
  out.final_time = cluster.sim()->Now();
  return out;
}

class DeterminismTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(DeterminismTest, SameSeedReplaysIdentically) {
  const ClusterConfig config = SmallConfig(GetParam(), 3, 6, 77);
  const RunSummary a = RunOnce(config, /*with_crash=*/false);
  const RunSummary b = RunOnce(config, /*with_crash=*/false);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.weak, b.weak);
  EXPECT_EQ(a.messages, b.messages) << "event-for-event replay expected";
}

TEST_P(DeterminismTest, SameSeedReplaysIdenticallyThroughCrash) {
  const ClusterConfig config = SmallConfig(GetParam(), 3, 6, 78);
  const RunSummary a = RunOnce(config, /*with_crash=*/true);
  const RunSummary b = RunOnce(config, /*with_crash=*/true);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages, b.messages);
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
  const RunSummary a = RunOnce(SmallConfig(GetParam(), 3, 6, 101), false);
  const RunSummary b = RunOnce(SmallConfig(GetParam(), 3, 6, 102), false);
  EXPECT_NE(a.messages, b.messages);
}

INSTANTIATE_TEST_SUITE_P(Protocols, DeterminismTest,
                         ::testing::Values(Protocol::kRaft,
                                           Protocol::kNbRaft,
                                           Protocol::kNbCRaft),
                         [](const auto& info) {
                           std::string name(raft::ProtocolName(info.param));
                           for (char& c : name) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return name;
                         });

TEST(AckSoundnessTest, EveryStrongAckIsInTheCommittedLog) {
  // A STRONG_ACCEPT tells the client its request is durable: the count of
  // completed requests can never exceed the distinct requests committed.
  for (Protocol protocol :
       {Protocol::kRaft, Protocol::kNbRaft, Protocol::kNbCRaft}) {
    ClusterConfig config = SmallConfig(protocol, 3, 8, 55);
    Cluster cluster(config);
    cluster.Start();
    ASSERT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Seconds(1));
    cluster.StopAllClients();
    cluster.RunFor(Millis(300));

    int leader_index = -1;
    for (int i = 0; i < 3; ++i) {
      if (!cluster.node(i)->crashed() &&
          cluster.node(i)->role() == raft::Role::kLeader) {
        leader_index = i;
      }
    }
    ASSERT_GE(leader_index, 0);
    const ClusterStats stats = cluster.Collect();
    EXPECT_LE(stats.requests_completed,
              cluster.CountUniqueRequestsInLog(leader_index))
        << raft::ProtocolName(protocol);
  }
}

TEST(AckSoundnessTest, AcksSurviveLeaderCrash) {
  // Requests strongly acked before a leader crash must be present in the
  // new leader's log (the client was told they are durable).
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 8, 56);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(600));

  const uint64_t acked_before = cluster.Collect().requests_completed;
  cluster.CrashLeader();
  cluster.StopAllClients();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(10)));
  cluster.RunFor(Millis(300));

  int new_leader = -1;
  for (int i = 0; i < 3; ++i) {
    if (!cluster.node(i)->crashed() &&
        cluster.node(i)->role() == raft::Role::kLeader) {
      new_leader = i;
    }
  }
  ASSERT_GE(new_leader, 0);
  EXPECT_GE(cluster.CountUniqueRequestsInLog(new_leader), acked_before);
}

}  // namespace
}  // namespace nbraft::harness
