// Multi-Raft cluster integration: several consensus groups share one
// simulated substrate (hosts, NICs, CPU pools, disk lanes). Covers group
// bring-up and per-group commit progress, workload sharding (each group
// ingests exactly its ShardMap slice), router hint maintenance through
// elections and crashes, physical-host crash semantics (co-resident
// replicas die together), group-labeled stats/observability output, and
// leader rebalancing end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "tsdb/ingest_record.h"

namespace nbraft::harness {
namespace {

ClusterConfig MultiConfig(int groups, raft::Protocol protocol,
                          uint64_t seed = 42) {
  ClusterConfig config;
  config.num_nodes = 3;
  config.num_groups = groups;
  config.num_clients = 2;  // Per group.
  config.protocol = protocol;
  config.window_size = 64;
  config.payload_size = 256;
  config.client_think = Millis(1);
  config.election_timeout = Millis(150);
  config.seed = seed;
  config.workload.series_count = 64;
  // Keep the whole log inspectable: no compaction, no payload release.
  config.snapshot_threshold = 0;
  config.release_payloads = false;
  return config;
}

TEST(MultiRaftClusterTest, EveryGroupElectsAndCommits) {
  Cluster cluster(MultiConfig(4, raft::Protocol::kNbRaft));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  cluster.StartClients();
  cluster.RunFor(Millis(500));

  for (int g = 0; g < 4; ++g) {
    raft::RaftNode* leader = cluster.leader(g);
    ASSERT_NE(leader, nullptr) << "group " << g;
    EXPECT_GT(leader->commit_index(), 0) << "group " << g;
    const ClusterStats stats = cluster.CollectGroup(g);
    EXPECT_GT(stats.requests_completed, 0u) << "group " << g;
  }
  // The merged view sums the groups.
  const ClusterStats all = cluster.Collect();
  uint64_t sum = 0;
  for (int g = 0; g < 4; ++g) sum += cluster.CollectGroup(g).requests_completed;
  EXPECT_EQ(all.requests_completed, sum);
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
}

TEST(MultiRaftClusterTest, BootstrapSpreadsLeadersRoundRobin) {
  Cluster cluster(MultiConfig(3, raft::Protocol::kRaft));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  // Round-robin bootstrap: group g's first leader is replica g % N (no
  // faults have run, so the bootstrap placement is still standing).
  for (int g = 0; g < 3; ++g) {
    raft::RaftNode* leader = cluster.leader(g);
    ASSERT_NE(leader, nullptr);
    EXPECT_EQ(cluster.group(g)->ReplicaOf(leader->id()), g % 3);
  }
  EXPECT_TRUE(cluster.PlanLeaderRebalance().empty());
}

TEST(MultiRaftClusterTest, GroupsIngestDisjointSeriesSlices) {
  Cluster cluster(MultiConfig(4, raft::Protocol::kNbRaft));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  // Decode the series ids actually replicated through each group and
  // check them against the ShardMap placement.
  const ShardMap& map = cluster.shard_map();
  for (int g = 0; g < 4; ++g) {
    raft::RaftNode* leader = cluster.leader(g);
    ASSERT_NE(leader, nullptr);
    const auto& log = leader->log();
    int checked = 0;
    for (storage::LogIndex i = log.FirstIndex(); i <= log.LastIndex(); ++i) {
      const auto& e = log.AtUnchecked(i);
      if (e.client_id == net::kInvalidNode || e.payload.size() == 0) continue;
      const auto batch = tsdb::ParseIngestBatch(e.payload.view());
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      for (const tsdb::Measurement& m : *batch) {
        EXPECT_EQ(map.GroupForSeries(m.series_id), g)
            << "series " << m.series_id << " replicated through group " << g;
        ++checked;
      }
    }
    EXPECT_GT(checked, 0) << "group " << g << " replicated nothing";
  }
}

TEST(MultiRaftClusterTest, RouterTracksLeadersAndCrashInvalidates) {
  Cluster cluster(MultiConfig(4, raft::Protocol::kNbRaft));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));

  ShardRouter* router = cluster.router();
  for (int g = 0; g < 4; ++g) {
    ASSERT_NE(cluster.leader(g), nullptr);
    EXPECT_EQ(router->LeaderHint(g), cluster.leader(g)->id())
        << "group " << g;
  }

  // Crash group 1's leader host: that group's hint must clear, and every
  // co-resident replica on the host dies with it.
  raft::RaftNode* victim = cluster.leader(1);
  ASSERT_NE(victim, nullptr);
  const int host = cluster.group(1)->ReplicaOf(victim->id());
  ASSERT_GE(host, 0);
  cluster.CrashNode(host);
  EXPECT_EQ(router->LeaderHint(1), net::kInvalidNode);
  for (int g = 0; g < 4; ++g) {
    EXPECT_TRUE(cluster.node(g, host)->crashed()) << "group " << g;
  }

  // The deposed groups re-elect; the router relearns from the new terms.
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  for (int g = 0; g < 4; ++g) {
    ASSERT_NE(cluster.leader(g), nullptr);
    EXPECT_EQ(router->LeaderHint(g), cluster.leader(g)->id());
  }
  cluster.RestartNode(host);
  cluster.RunFor(Millis(300));
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
}

TEST(MultiRaftClusterTest, RebalanceConvergesAfterCrashPileup) {
  Cluster cluster(MultiConfig(4, raft::Protocol::kRaft));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));

  // Rolling host failures (quorum held throughout): after host 0 and then
  // host 1 each fail and heal, every leader sits on host 0 or 2 — host 1
  // holds none, so four leaders crowd two hosts.
  cluster.CrashNode(0);
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  cluster.RestartNode(0);
  cluster.RunFor(Millis(500));
  cluster.CrashNode(1);
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  for (int g = 0; g < 4; ++g) {
    ASSERT_NE(cluster.leader(g), nullptr);
    EXPECT_NE(cluster.group(g)->ReplicaOf(cluster.leader(g)->id()), 1);
  }
  cluster.RestartNode(1);
  cluster.RunFor(Millis(500));

  // Two hosts hold four leaders: the planner wants to spread them.
  const auto moves = cluster.PlanLeaderRebalance();
  ASSERT_FALSE(moves.empty());
  EXPECT_EQ(cluster.RebalanceLeaders(), static_cast<int>(moves.size()));
  cluster.RunFor(Millis(600));
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));

  // Rebalancing is best-effort placement, never a safety hazard.
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());

  // The spread improved: no host holds all four leaders any more.
  std::vector<int> load(3, 0);
  for (int g = 0; g < 4; ++g) {
    ASSERT_NE(cluster.leader(g), nullptr);
    ++load[static_cast<size_t>(
        cluster.group(g)->ReplicaOf(cluster.leader(g)->id()))];
  }
  EXPECT_LT(*std::max_element(load.begin(), load.end()), 4);
}

TEST(MultiRaftClusterTest, GroupLabeledStatsAndEndpointNames) {
  ClusterConfig config = MultiConfig(2, raft::Protocol::kNbRaft);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));

  const std::string json = cluster.NodeStatsJson();
  EXPECT_NE(json.find("\"g0.node0\""), std::string::npos);
  EXPECT_NE(json.find("\"g1.node2\""), std::string::npos);
  EXPECT_NE(json.find("\"group\""), std::string::npos);
  EXPECT_NE(json.find("\"replica\""), std::string::npos);

  EXPECT_EQ(cluster.EndpointName(0), "g0 node 0");
  EXPECT_EQ(cluster.EndpointName(4), "g1 node 1");
  EXPECT_EQ(cluster.EndpointName(net::kClientIdBase + 3), "g1 client 1");

  // Node identity lands in the per-node stats too.
  EXPECT_EQ(cluster.node(1, 2)->stats().group, 1);
  EXPECT_EQ(cluster.node(1, 2)->stats().replica, 2);
}

TEST(MultiRaftClusterTest, SingleGroupKeepsHistoricalSurface) {
  // The G=1 cluster still renders the historical names and stats keys
  // (bit-identity of the behavior itself is pinned by
  // examples/behavior_fingerprint, not here).
  Cluster cluster(MultiConfig(1, raft::Protocol::kNbRaft));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  const std::string json = cluster.NodeStatsJson();
  EXPECT_NE(json.find("\"node0\""), std::string::npos);
  EXPECT_EQ(json.find("\"g0.node0\""), std::string::npos);
  EXPECT_EQ(cluster.EndpointName(0), "node 0");
  EXPECT_EQ(cluster.EndpointName(net::kClientIdBase + 1), "client 1");
  EXPECT_EQ(cluster.num_groups(), 1);
  EXPECT_EQ(cluster.leader(), cluster.leader(0));
}

TEST(MultiRaftClusterTest, DoubleRunIsDeterministic) {
  const auto digest = [](Cluster& cluster) {
    cluster.Start();
    EXPECT_TRUE(cluster.AwaitLeader(Seconds(5)));
    cluster.StartClients();
    cluster.RunFor(Millis(400));
    std::vector<uint64_t> out;
    for (int g = 0; g < cluster.num_groups(); ++g) {
      const ClusterStats s = cluster.CollectGroup(g);
      out.push_back(s.requests_completed);
      out.push_back(s.weak_accepts);
      raft::RaftNode* leader = cluster.leader(g);
      out.push_back(leader != nullptr
                        ? static_cast<uint64_t>(leader->commit_index())
                        : 0);
    }
    out.push_back(cluster.network()->messages_sent());
    out.push_back(cluster.network()->bytes_sent());
    return out;
  };
  Cluster a(MultiConfig(4, raft::Protocol::kNbRaft, /*seed=*/7));
  Cluster b(MultiConfig(4, raft::Protocol::kNbRaft, /*seed=*/7));
  EXPECT_EQ(digest(a), digest(b));
}

}  // namespace
}  // namespace nbraft::harness
