// The full observability pipeline on a real cluster: the per-node pull
// sources PR 1 stubbed out (window occupancy, pending barriers, CPU / IO
// lane queue depths, replication lag) register and sample; every sampled
// series mirrors into the Gorilla store at full resolution; the flight
// recorder journals protocol events for every replica; and
// WriteObsBundle() lands the whole snapshot set in one directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "harness/cluster.h"
#include "obs/names.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::harness {
namespace {

using raft::Protocol;
using raft_test::SmallConfig;

ClusterConfig ObsConfig(uint64_t seed) {
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, seed);
  config.sample_interval = Millis(1);
  config.journal = true;
  config.compress_series = true;
  config.disk.enabled = true;
  config.disk.write_latency = Micros(10);
  config.disk.fsync_latency = Micros(100);
  config.disk.group_commit = true;
  return config;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ObsPipelineTest, PerNodeSourcesRegisterAndSample) {
  Cluster cluster(ObsConfig(11));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(100));

  ASSERT_NE(cluster.registry(), nullptr);
  std::set<std::string> source_names;
  for (const auto& source : cluster.registry()->sources()) {
    source_names.insert(source.name);
  }
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const std::string suffix = ".node" + std::to_string(n);
    for (const char* base :
         {obs::names::kWindowOccupancyNode, obs::names::kBarriersPending,
          obs::names::kReplicationLag, obs::names::kCpuQueueDepth,
          obs::names::kIoQueueDepth}) {
      EXPECT_TRUE(source_names.count(base + suffix) == 1)
          << "missing per-node source " << base << suffix;
    }
  }

  // The sampler froze that source list and has been ticking.
  ASSERT_NE(cluster.sampler(), nullptr);
  const auto& samples = cluster.sampler()->samples();
  ASSERT_GT(samples.size(), 50u);
  const auto& names = cluster.sampler()->series_names();
  ASSERT_EQ(names.size(), samples.front().values.size());

  // The ingest workload moved real bytes, so the NIC series ends nonzero.
  const auto it =
      std::find(names.begin(), names.end(), obs::names::kNicBytesSent);
  ASSERT_NE(it, names.end());
  const size_t nic = static_cast<size_t>(it - names.begin());
  EXPECT_GT(samples.back().values[nic], 0.0);
}

TEST(ObsPipelineTest, SeriesStoreMirrorsEverySampledSeries) {
  Cluster cluster(ObsConfig(12));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(60));

  obs::SeriesStore* store = cluster.series_store();
  ASSERT_NE(store, nullptr);
  const auto& names = cluster.sampler()->series_names();
  const auto& samples = cluster.sampler()->samples();
  ASSERT_EQ(store->series_count(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(store->name(i), names[i]);
    ASSERT_EQ(store->point_count(i), samples.size()) << names[i];
    const auto decoded = store->Decode(i);
    ASSERT_TRUE(decoded.ok()) << names[i];
    for (size_t s = 0; s < samples.size(); ++s) {
      ASSERT_EQ((*decoded)[s].timestamp, samples[s].at);
      ASSERT_EQ((*decoded)[s].value, samples[s].values[i])
          << names[i] << " sample " << s;
    }
  }
}

TEST(ObsPipelineTest, JournalCoversEveryReplica) {
  Cluster cluster(ObsConfig(13));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(100));

  obs::Journal* journal = cluster.journal();
  ASSERT_NE(journal, nullptr);
  EXPECT_GT(journal->events_recorded(), 0u);
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    EXPECT_FALSE(journal->NodeEvents(n).empty()) << "node " << n;
  }
  // Disk mode journals storage barrier traffic too.
  bool saw_fsync = false;
  for (const obs::JournalEvent& e : journal->MergedEvents()) {
    if (e.kind == obs::JournalEventKind::kDiskFsync) saw_fsync = true;
  }
  EXPECT_TRUE(saw_fsync);
}

TEST(ObsPipelineTest, WriteObsBundleLandsTheFullSnapshotSet) {
  Cluster cluster(ObsConfig(14));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(50));

  const std::string dir = ::testing::TempDir() + "/obs_bundle";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(cluster.WriteObsBundle(dir).ok());

  for (const char* file : {"metrics.json", "metrics.prom", "journal.jsonl",
                           "timeline.txt", "node_stats.json"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + file)) << file;
  }
  const std::string metrics = Slurp(dir + "/metrics.json");
  EXPECT_NE(metrics.find("\"nbraft-obs-metrics-v1\""), std::string::npos);
  EXPECT_NE(metrics.find(obs::names::kBarriersPending), std::string::npos);
  const std::string prom = Slurp(dir + "/metrics.prom");
  EXPECT_NE(prom.find("{node=\"0\"}"), std::string::npos);
  const std::string journal = Slurp(dir + "/journal.jsonl");
  EXPECT_NE(journal.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(journal.find("net.msg_send"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nbraft::harness
