// Persistence-loss experiments (paper Sec. IV / Sec. V-G, Fig. 19):
// committed entries are never lost; weakly accepted entries can be, but
// the loss is bounded by N_cli + w.

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::harness {
namespace {

using raft::Protocol;
using raft_test::SmallConfig;

TEST(PersistenceLossTest, CommittedEntriesSurviveLeaderCrash) {
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, 31);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));

  raft::RaftNode* old_leader = cluster.leader();
  const storage::LogIndex committed = old_leader->commit_index();
  // Remember the committed entry identities.
  std::vector<uint64_t> committed_ids;
  for (storage::LogIndex i = old_leader->log().FirstIndex(); i <= committed;
       ++i) {
    committed_ids.push_back(old_leader->log().AtUnchecked(i).request_id);
  }

  cluster.CrashLeader();
  cluster.StopAllClients();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(10)));
  cluster.RunFor(Millis(500));

  raft::RaftNode* new_leader = cluster.leader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_GE(new_leader->log().LastIndex(), committed)
      << "Leader Completeness: committed prefix present on the new leader";
  for (storage::LogIndex i = new_leader->log().FirstIndex(); i <= committed;
       ++i) {
    EXPECT_EQ(new_leader->log().AtUnchecked(i).request_id,
              committed_ids[static_cast<size_t>(
                  i - new_leader->log().FirstIndex())])
        << "committed entry changed at " << i;
  }
}

TEST(PersistenceLossTest, LossBoundedByClientsPlusWindow) {
  // Paper Sec. IV: "if there are N_cli client connections when clients and
  // the leader fail, up to N_cli requests will be lost in Raft... the
  // potential loss is enlarged to N_cli + w."
  for (uint64_t seed : {1u, 5u, 9u}) {
    ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 8, seed);
    config.window_size = 16;
    const LossResult r = RunLossExperiment(config, Millis(800));
    ASSERT_TRUE(r.new_leader_elected);
    ASSERT_GT(r.requests_issued, 0u);
    const uint64_t lost = r.requests_issued - std::min(r.requests_survived,
                                                       r.requests_issued);
    EXPECT_LE(lost, 8u + 16u)
        << "seed " << seed << ": loss must be bounded by N_cli + w";
  }
}

TEST(PersistenceLossTest, RaftLossBoundedByClients) {
  for (uint64_t seed : {2u, 6u}) {
    ClusterConfig config = SmallConfig(Protocol::kRaft, 3, 8, seed);
    const LossResult r = RunLossExperiment(config, Millis(800));
    ASSERT_TRUE(r.new_leader_elected);
    const uint64_t lost = r.requests_issued - std::min(r.requests_survived,
                                                       r.requests_issued);
    EXPECT_LE(lost, 8u) << "Raft: at most one in-flight request per client";
  }
}

TEST(PersistenceLossTest, LossFractionIsTiny) {
  // Paper: ~0.00003% with a 0.5 s follower timeout. Our virtual runs are
  // shorter, so the fraction is larger, but still far below a percent.
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 8, 3);
  const LossResult r = RunLossExperiment(config, Seconds(2));
  ASSERT_TRUE(r.new_leader_elected);
  EXPECT_LT(r.loss_fraction, 0.01);
}

TEST(PersistenceLossTest, LongerFollowerTimeoutLosesNoMore) {
  // Paper Fig. 19(b): increasing the follower timeout reduces entry loss —
  // the new leader keeps receiving the dead leader's in-flight entries
  // during the timeout.
  uint64_t lost_short_total = 0;
  uint64_t lost_long_total = 0;
  for (uint64_t seed : {11u, 13u, 17u, 19u}) {
    ClusterConfig short_config = SmallConfig(Protocol::kNbRaft, 3, 8, seed);
    short_config.election_timeout = Millis(100);
    ClusterConfig long_config = SmallConfig(Protocol::kNbRaft, 3, 8, seed);
    long_config.election_timeout = Millis(2000);

    const LossResult a = RunLossExperiment(short_config, Millis(600));
    const LossResult b = RunLossExperiment(long_config, Millis(600));
    if (!a.new_leader_elected || !b.new_leader_elected) continue;
    lost_short_total +=
        a.requests_issued - std::min(a.requests_survived, a.requests_issued);
    lost_long_total +=
        b.requests_issued - std::min(b.requests_survived, b.requests_issued);
  }
  EXPECT_LE(lost_long_total, lost_short_total)
      << "longer timeouts must not lose more entries";
}

TEST(PersistenceLossTest, NoFailureNoLoss) {
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, 41);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(2));

  // Without failures, every issued request is in the leader's log.
  int leader_index = -1;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() == raft::Role::kLeader) leader_index = i;
  }
  ASSERT_GE(leader_index, 0);
  EXPECT_EQ(cluster.CountUniqueRequestsInLog(leader_index),
            cluster.TotalRequestsIssued());
}

}  // namespace
}  // namespace nbraft::harness
