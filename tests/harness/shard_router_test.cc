// ShardMap placement and ShardRouter leader-hint cache: hash stability
// (pinned values — changing the hash is a data-placement migration, not a
// refactor), exact partitioning of the series universe, hint install /
// stale-term rejection / invalidation-with-watermark, and the greedy
// leader rebalance planner (balance, determinism, idempotence).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "harness/shard_map.h"
#include "harness/shard_router.h"

namespace nbraft::harness {
namespace {

TEST(ShardMapTest, HashStabilityPins) {
  // Frozen placements for (4 groups, salt 0). If this test fails the hash
  // function changed, which silently reshuffles every deployment's data.
  const ShardMap map(4, 0);
  EXPECT_EQ(map.GroupForSeries(0), 1);
  EXPECT_EQ(map.GroupForSeries(1), 0);
  EXPECT_EQ(map.GroupForSeries(2), 3);
  EXPECT_EQ(map.GroupForSeries(3), 2);
  EXPECT_EQ(map.GroupForSeries(7), 2);
  EXPECT_EQ(map.GroupForSeries(42), 3);
  EXPECT_EQ(map.GroupForSeries(999), 3);
  EXPECT_EQ(map.GroupForKey("sensor/0"), 0);
  EXPECT_EQ(map.GroupForKey("sensor/1"), 3);
  EXPECT_EQ(map.GroupForKey("fleet-7/temp"), 2);
  EXPECT_EQ(map.GroupForKey("x"), 3);

  // A different salt is a different placement universe.
  const ShardMap salted(4, 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(salted.GroupForSeries(0), 0);
  EXPECT_EQ(salted.GroupForSeries(1), 1);
  EXPECT_EQ(salted.GroupForSeries(2), 2);
  EXPECT_EQ(salted.GroupForSeries(3), 3);
}

TEST(ShardMapTest, TwoInstancesAgreeAndSingleGroupIsIdentity) {
  const ShardMap a(8, 77);
  const ShardMap b(8, 77);
  for (uint64_t s = 0; s < 500; ++s) {
    EXPECT_EQ(a.GroupForSeries(s), b.GroupForSeries(s));
  }
  const ShardMap one(1, 12345);
  for (uint64_t s = 0; s < 100; ++s) {
    EXPECT_EQ(one.GroupForSeries(s), 0);
  }
}

TEST(ShardMapTest, SeriesForGroupPartitionsTheUniverse) {
  const ShardMap map(4, 0);
  const uint64_t kCount = 1000;
  std::set<uint64_t> seen;
  for (int g = 0; g < 4; ++g) {
    const std::vector<uint64_t> shard = map.SeriesForGroup(g, kCount);
    EXPECT_FALSE(shard.empty());
    uint64_t prev = 0;
    bool first = true;
    for (uint64_t s : shard) {
      EXPECT_LT(s, kCount);
      EXPECT_EQ(map.GroupForSeries(s), g);
      if (!first) EXPECT_GT(s, prev);  // Ascending, no duplicates.
      prev = s;
      first = false;
      EXPECT_TRUE(seen.insert(s).second) << "series " << s << " in 2 shards";
    }
  }
  EXPECT_EQ(seen.size(), kCount);  // Exact partition, nothing dropped.
}

TEST(ShardMapTest, DegenerateUniverseFallsBackToRoundRobin) {
  // Fewer series than groups: hashing leaves some groups empty, and an
  // empty group falls back to a round-robin pick — every group ingests.
  const ShardMap map(8, 0);
  for (int g = 0; g < 8; ++g) {
    const std::vector<uint64_t> shard = map.SeriesForGroup(g, 4);
    ASSERT_FALSE(shard.empty());
    for (uint64_t s : shard) {
      EXPECT_LT(s, 4u);
      if (map.GroupForSeries(s) != g) {
        // Not hash-owned, so this must be the lone round-robin fallback.
        EXPECT_EQ(shard.size(), 1u);
        EXPECT_EQ(s, static_cast<uint64_t>(g % 4));
      }
    }
  }
}

TEST(ShardMapTest, BootstrapPlacementRoundRobins) {
  const ShardMap map(16, 0);
  EXPECT_EQ(map.BootstrapLeaderReplica(0, 3), 0);
  EXPECT_EQ(map.BootstrapLeaderReplica(1, 3), 1);
  EXPECT_EQ(map.BootstrapLeaderReplica(2, 3), 2);
  EXPECT_EQ(map.BootstrapLeaderReplica(3, 3), 0);
}

TEST(ShardRouterTest, InstallsAndRoutesHints) {
  const ShardMap map(4, 0);
  ShardRouter router(&map);
  EXPECT_EQ(router.LeaderHint(2), net::kInvalidNode);

  router.ObserveLeader(2, /*leader=*/7, /*term=*/3);
  EXPECT_EQ(router.LeaderHint(2), 7);
  EXPECT_EQ(router.LeaderHintTerm(2), 3);
  EXPECT_EQ(router.hints_installed(), 1u);

  // RouteKey composes the placement with the cached hint.
  EXPECT_EQ(router.GroupForKey("sensor/1"), 3);
  EXPECT_EQ(router.RouteKey("sensor/1"), net::kInvalidNode);  // Cold hint.
  router.ObserveLeader(3, /*leader=*/11, /*term=*/2);
  EXPECT_EQ(router.RouteKey("sensor/1"), 11);
}

TEST(ShardRouterTest, RejectsStaleTermObservations) {
  const ShardMap map(2, 0);
  ShardRouter router(&map);
  router.ObserveLeader(0, 4, /*term=*/10);
  // A delayed notification from a deposed leader's old term must not
  // overwrite the newer hint.
  router.ObserveLeader(0, 9, /*term=*/7);
  EXPECT_EQ(router.LeaderHint(0), 4);
  EXPECT_EQ(router.LeaderHintTerm(0), 10);
  EXPECT_EQ(router.stale_observations(), 1u);

  // Same term re-observation refreshes (idempotent re-install is legal).
  router.ObserveLeader(0, 4, /*term=*/10);
  EXPECT_EQ(router.LeaderHint(0), 4);
}

TEST(ShardRouterTest, InvalidationKeepsTermWatermark) {
  const ShardMap map(2, 0);
  ShardRouter router(&map);
  router.ObserveLeader(1, 5, /*term=*/6);
  router.InvalidateLeader(1);
  EXPECT_EQ(router.LeaderHint(1), net::kInvalidNode);
  EXPECT_EQ(router.hints_invalidated(), 1u);

  // Idempotent: invalidating an empty hint is a no-op.
  router.InvalidateLeader(1);
  EXPECT_EQ(router.hints_invalidated(), 1u);

  // The watermark survives invalidation: a stale echo of the deposed
  // leader (older term) cannot resurrect the hint...
  router.ObserveLeader(1, 5, /*term=*/4);
  EXPECT_EQ(router.LeaderHint(1), net::kInvalidNode);
  // ...but a genuinely newer election can.
  router.ObserveLeader(1, 3, /*term=*/7);
  EXPECT_EQ(router.LeaderHint(1), 3);
}

TEST(ShardRouterTest, MembershipRemovalInvalidatesOnlyMatchingHints) {
  const ShardMap map(2, 0);
  ShardRouter router(&map);
  router.ObserveLeader(0, 5, /*term=*/6);
  router.ObserveLeader(1, 8, /*term=*/3);

  // Node 5 leaves group 0's configuration: its hint must drop so routed
  // traffic stops landing on the removed node.
  router.InvalidateIfLeaderIs(0, 5);
  EXPECT_EQ(router.LeaderHint(0), net::kInvalidNode);
  EXPECT_EQ(router.hints_invalidated(), 1u);

  // A hint already pointing elsewhere is fresher than the removal and
  // survives — and a cold hint is a no-op, not a double count.
  router.InvalidateIfLeaderIs(1, 5);
  EXPECT_EQ(router.LeaderHint(1), 8);
  router.InvalidateIfLeaderIs(0, 5);
  EXPECT_EQ(router.hints_invalidated(), 1u);

  // The term watermark survives, exactly like InvalidateLeader: a stale
  // echo of the removed leader cannot resurrect the hint.
  router.ObserveLeader(0, 5, /*term=*/4);
  EXPECT_EQ(router.LeaderHint(0), net::kInvalidNode);
  router.ObserveLeader(0, 2, /*term=*/7);
  EXPECT_EQ(router.LeaderHint(0), 2);
}

TEST(ShardRouterTest, RebalancePlanEvensOutLeaders) {
  // 6 groups, all leaders piled on node 0 of 3.
  const std::vector<int> placement = {0, 0, 0, 0, 0, 0};
  const auto moves = ShardRouter::PlanRebalance(placement, 3);
  std::vector<int> after = placement;
  for (const auto& m : moves) {
    EXPECT_EQ(after[static_cast<size_t>(m.group)], m.from);
    after[static_cast<size_t>(m.group)] = m.to;
  }
  std::vector<int> load(3, 0);
  for (int n : after) ++load[static_cast<size_t>(n)];
  EXPECT_EQ(load, (std::vector<int>{2, 2, 2}));
}

TEST(ShardRouterTest, RebalanceIsIdempotentAndDeterministic) {
  const std::vector<int> placement = {2, 2, 2, 2, 0, -1, 1};
  const auto moves_a = ShardRouter::PlanRebalance(placement, 3);
  const auto moves_b = ShardRouter::PlanRebalance(placement, 3);
  ASSERT_EQ(moves_a.size(), moves_b.size());
  for (size_t i = 0; i < moves_a.size(); ++i) {
    EXPECT_EQ(moves_a[i].group, moves_b[i].group);
    EXPECT_EQ(moves_a[i].from, moves_b[i].from);
    EXPECT_EQ(moves_a[i].to, moves_b[i].to);
  }

  // Applying the plan and re-planning finds nothing left to move.
  std::vector<int> after = placement;
  for (const auto& m : moves_a) after[static_cast<size_t>(m.group)] = m.to;
  EXPECT_TRUE(ShardRouter::PlanRebalance(after, 3).empty());

  // Max-min leader spread is <= 1 afterwards (unplaced groups ignored).
  std::vector<int> load(3, 0);
  for (int n : after) {
    if (n >= 0) ++load[static_cast<size_t>(n)];
  }
  const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*mx - *mn, 1);
}

TEST(ShardRouterTest, AlreadyBalancedPlansNothing) {
  EXPECT_TRUE(ShardRouter::PlanRebalance({0, 1, 2}, 3).empty());
  EXPECT_TRUE(ShardRouter::PlanRebalance({}, 3).empty());
  EXPECT_TRUE(ShardRouter::PlanRebalance({0, 0}, 1).empty());
}

}  // namespace
}  // namespace nbraft::harness
