// Simulated-disk durability integration: with disk.enabled, a crash wipes
// a node's memory but its disk image survives; restart replays the image,
// acknowledgements wait for covering fsyncs (group commit), snapshots and
// compaction coexist with the durable log, tail corruption heals from the
// leader under quarantine, and identical configs replay identically.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "harness/cluster.h"
#include "storage/sim_disk.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::harness {
namespace {

using raft::Protocol;
using raft_test::SmallConfig;

ClusterConfig DiskConfig(Protocol protocol, uint64_t seed) {
  ClusterConfig config = SmallConfig(protocol, 3, 4, seed);
  config.disk.enabled = true;
  config.disk.write_latency = Micros(10);
  config.disk.fsync_latency = Micros(100);
  config.disk.group_commit = true;
  config.disk.fault_seed = seed;
  return config;
}

int PickFollower(Cluster* cluster) {
  raft::RaftNode* leader = cluster->leader();
  for (int i = 0; i < cluster->num_nodes(); ++i) {
    if (cluster->node(i) != leader) return i;
  }
  return -1;
}

TEST(SimDurabilityTest, CrashWipesMemoryAndRestartRecoversFromDisk) {
  Cluster cluster(DiskConfig(Protocol::kNbRaft, 71));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(500));

  const int victim = PickFollower(&cluster);
  ASSERT_GE(victim, 0);
  raft::RaftNode* node = cluster.node(victim);
  ASSERT_NE(node->disk(), nullptr);
  ASSERT_GT(node->stats().fsyncs_completed, 0u);
  ASSERT_GT(node->stats().disk_bytes_written, 0u);
  const storage::LogIndex before = node->log().LastIndex();
  const storage::Term term_before = node->current_term();
  ASSERT_GT(before, 10);
  const size_t durable_before = node->disk()->durable_records();

  cluster.CrashNode(victim);
  // Durable mode: the crash wipes all in-memory state...
  EXPECT_EQ(node->log().LastIndex(), 0);
  EXPECT_EQ(node->current_term(), 0);
  // ... but the disk image survives (up to its fsynced frontier).
  EXPECT_GE(node->disk()->records().size(), durable_before);

  cluster.RestartNode(victim);
  EXPECT_EQ(node->stats().recoveries, 1u);
  // Everything durably fsynced before the crash is back; nothing beyond
  // the pre-crash log was invented.
  EXPECT_GT(node->log().LastIndex(), 0);
  EXPECT_LE(node->log().LastIndex(), before);
  EXPECT_GE(node->current_term(), term_before > 0 ? term_before - 1 : 0);

  // The node rejoins replication and catches back up.
  cluster.RunFor(Millis(700));
  EXPECT_GE(node->log().LastIndex(), before);
  EXPECT_GT(node->commit_index(), 0);
}

TEST(SimDurabilityTest, GroupCommitBatchesRecordsPerFsync) {
  Cluster cluster(DiskConfig(Protocol::kNbRaft, 72));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(800));

  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  // Group commit: many persisted records amortize onto fewer barriers.
  EXPECT_GT(leader->stats().entries_appended, 0u);
  EXPECT_GT(leader->stats().fsyncs_completed, 0u);
  EXPECT_LT(leader->stats().fsyncs_completed,
            leader->stats().entries_appended);
  // And clients still complete strongly acked writes.
  EXPECT_GT(cluster.Collect().requests_completed, 0u);
}

TEST(SimDurabilityTest, SnapshotsCoexistWithSimDisk) {
  ClusterConfig config = DiskConfig(Protocol::kNbRaft, 73);
  config.snapshot_threshold = 64;
  config.snapshot_keep_tail = 16;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));

  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  ASSERT_GT(leader->stats().snapshots_taken, 0u);
  ASSERT_GT(leader->log().FirstIndex(), 1);

  // Crash + restart a compacted node: recovery folds the snapshot and
  // compact markers, restoring a log that starts past the snapshot point.
  const int victim = PickFollower(&cluster);
  ASSERT_GE(victim, 0);
  raft::RaftNode* node = cluster.node(victim);
  const storage::LogIndex first_before = node->log().FirstIndex();
  cluster.CrashNode(victim);
  cluster.RestartNode(victim);
  EXPECT_GE(node->log().FirstIndex(), first_before);
  if (first_before > 1) {
    // A compacted durable log restores the snapshot into the state
    // machine: apply resumes past it, never below the first index.
    EXPECT_GE(node->applied_index(), first_before - 1);
  }
  cluster.RunFor(Millis(700));
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
  EXPECT_GT(node->commit_index(), 0);
}

TEST(SimDurabilityTest, SnapshotsCoexistWithWalDir) {
  // The formerly-rejected combination: a real WAL file plus snapshot
  // compaction. Snapshot/compact markers make the WAL self-contained.
  const auto dir = std::filesystem::temp_directory_path() /
                   "sim_durability_waldir_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, 74);
  config.wal_dir = dir.string();
  config.snapshot_threshold = 64;
  config.snapshot_keep_tail = 16;
  {
    Cluster cluster(config);
    cluster.Start();
    ASSERT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Seconds(1));
    raft::RaftNode* leader = cluster.leader();
    ASSERT_NE(leader, nullptr);
    ASSERT_GT(leader->stats().snapshots_taken, 0u);

    const int victim = PickFollower(&cluster);
    ASSERT_GE(victim, 0);
    raft::RaftNode* node = cluster.node(victim);
    const storage::LogIndex commit_before = node->commit_index();
    cluster.CrashNode(victim);
    EXPECT_EQ(node->log().LastIndex(), 0);
    cluster.RestartNode(victim);
    EXPECT_GT(node->log().LastIndex(), 0);
    cluster.RunFor(Millis(700));
    EXPECT_GE(node->commit_index(), commit_before);
    EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
  }
  std::filesystem::remove_all(dir);
}

TEST(SimDurabilityTest, CorruptionQuarantinesUntilHealedFromLeader) {
  Cluster cluster(DiskConfig(Protocol::kNbRaft, 75));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(500));

  const int victim = PickFollower(&cluster);
  ASSERT_GE(victim, 0);
  raft::RaftNode* node = cluster.node(victim);
  ASSERT_NE(node->disk(), nullptr);

  cluster.CrashNode(victim);
  ASSERT_TRUE(node->disk()->CorruptTailRecord());
  cluster.RestartNode(victim);

  // Recovery detected the rot: the node is quarantined (no elections, no
  // vote grants) until its committed prefix catches the leader back up.
  EXPECT_TRUE(node->heal_quarantine());
  EXPECT_TRUE(node->disk()->heal_scar());

  cluster.RunFor(Seconds(1));
  EXPECT_FALSE(node->heal_quarantine()) << "quarantine never lifted";
  EXPECT_FALSE(node->disk()->heal_scar());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
  EXPECT_GT(node->commit_index(), 0);
}

TEST(SimDurabilityTest, DiskRunsAreDeterministic) {
  auto run = [](uint64_t seed) {
    Cluster cluster(DiskConfig(Protocol::kNbRaft, seed));
    cluster.Start();
    EXPECT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Seconds(1));
    std::string fingerprint = cluster.NodeStatsJson();
    fingerprint += std::to_string(cluster.Collect().requests_completed);
    return fingerprint;
  };
  EXPECT_EQ(run(76), run(76));
}

}  // namespace
}  // namespace nbraft::harness
