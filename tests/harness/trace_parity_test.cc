// Observability must be a pure observer: a traced run (tracer + sampler
// attached) replays bit-identically to an untraced run of the same seed,
// and the tracer's running per-phase totals agree with the breakdown the
// cluster collects from its nodes and clients.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "metrics/breakdown.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::harness {
namespace {

using raft::Protocol;
using raft_test::SmallConfig;

struct RunSummary {
  std::vector<std::pair<storage::LogIndex, uint64_t>> committed;
  uint64_t completed = 0;
  uint64_t weak = 0;
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

RunSummary Fingerprint(Cluster& cluster) {
  RunSummary out;
  raft::RaftNode* leader = cluster.leader();
  EXPECT_NE(leader, nullptr);
  const auto& log = leader->log();
  for (storage::LogIndex i = log.FirstIndex();
       i <= leader->commit_index() && i <= log.LastIndex(); ++i) {
    out.committed.emplace_back(i, log.AtUnchecked(i).request_id);
  }
  const ClusterStats stats = cluster.Collect();
  out.completed = stats.requests_completed;
  out.weak = stats.weak_accepts;
  out.messages = cluster.network()->messages_sent();
  out.bytes = cluster.network()->bytes_sent();
  return out;
}

void Drive(Cluster& cluster) {
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(400));
  cluster.StopAllClients();
  cluster.RunFor(Millis(300));
}

class TraceParityTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(TraceParityTest, TracedRunIsBitIdenticalToUntraced) {
  ClusterConfig plain = SmallConfig(GetParam(), 3, 6, 91);

  ClusterConfig traced = plain;
  traced.trace = true;
  traced.sample_interval = Millis(5);

  Cluster a(plain);
  Drive(a);
  const RunSummary fa = Fingerprint(a);

  Cluster b(traced);
  Drive(b);
  const RunSummary fb = Fingerprint(b);

  EXPECT_EQ(fa.committed, fb.committed);
  EXPECT_EQ(fa.completed, fb.completed);
  EXPECT_EQ(fa.weak, fb.weak);
  EXPECT_EQ(fa.messages, fb.messages)
      << "tracing must not add, drop, or reorder messages";
  EXPECT_EQ(fa.bytes, fb.bytes);

  // The traced run actually recorded something.
  ASSERT_NE(b.tracer(), nullptr);
  EXPECT_GT(b.tracer()->spans_recorded(), 0u);
  ASSERT_NE(b.sampler(), nullptr);
  EXPECT_GT(b.sampler()->samples().size(), 1u);
}

TEST_P(TraceParityTest, TracerTotalsMatchCollectedBreakdown) {
  ClusterConfig config = SmallConfig(GetParam(), 3, 6, 92);
  config.trace = true;
  Cluster cluster(config);
  Drive(cluster);

  const metrics::Breakdown& traced = cluster.tracer()->SpanBreakdown();
  const metrics::Breakdown collected = cluster.Collect().breakdown;
  for (int i = 0; i < metrics::kNumPhases; ++i) {
    const auto phase = static_cast<metrics::Phase>(i);
    EXPECT_EQ(traced.total(phase), collected.total(phase))
        << metrics::PhaseNotation(phase);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, TraceParityTest,
                         ::testing::Values(Protocol::kRaft,
                                           Protocol::kNbRaft),
                         [](const auto& info) {
                           std::string name(raft::ProtocolName(info.param));
                           for (char& c : name) {
                             if (c == '-' || c == '+') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace nbraft::harness
