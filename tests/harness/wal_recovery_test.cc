// Real-durability integration: with wal_dir set, a crash erases all of a
// node's memory and restart recovers log/term/vote from the file — the
// paper's Sec. IV durable-log assumption made concrete.

#include <gtest/gtest.h>

#include <filesystem>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::harness {
namespace {

using raft::Protocol;
using raft_test::SmallConfig;

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wal_recovery_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ClusterConfig Config(Protocol protocol, uint64_t seed) {
    ClusterConfig config = SmallConfig(protocol, 3, 4, seed);
    config.wal_dir = dir_.string();
    return config;
  }

  std::filesystem::path dir_;
};

TEST_F(WalRecoveryTest, WalFilesAppearAndGrow) {
  Cluster cluster(Config(Protocol::kRaft, 61));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(500));
  for (int i = 0; i < 3; ++i) {
    const auto path = dir_ / ("node_" + std::to_string(i) + ".wal");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 1000u);
  }
}

TEST_F(WalRecoveryTest, CrashedNodeRecoversLogFromFile) {
  Cluster cluster(Config(Protocol::kNbRaft, 62));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(500));

  int victim = -1;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() != raft::Role::kLeader) {
      victim = i;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  const storage::LogIndex before = cluster.node(victim)->log().LastIndex();
  const storage::Term term_before = cluster.node(victim)->current_term();
  ASSERT_GT(before, 10);

  cluster.CrashNode(victim);
  // Crash with real durability wipes memory.
  EXPECT_EQ(cluster.node(victim)->log().LastIndex(), 0);
  EXPECT_EQ(cluster.node(victim)->current_term(), 0);

  cluster.RestartNode(victim);
  // Recovery restores everything durably appended before the crash.
  EXPECT_GE(cluster.node(victim)->log().LastIndex(), before);
  EXPECT_GE(cluster.node(victim)->current_term(), term_before);

  // And the node rejoins replication.
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(2));
  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GE(cluster.node(victim)->log().LastIndex(),
            leader->commit_index());
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
}

TEST_F(WalRecoveryTest, StateMachineRebuiltByReapplying) {
  ClusterConfig config = Config(Protocol::kRaft, 63);
  config.workload.series_count = 5;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(500));

  int victim = -1;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() != raft::Role::kLeader) {
      victim = i;
      break;
    }
  }
  cluster.CrashNode(victim);
  EXPECT_EQ(cluster.node(victim)->state_machine().PointCount(0), 0u)
      << "crash wipes the in-memory state machine";
  cluster.RestartNode(victim);
  cluster.StopAllClients();
  cluster.RunFor(Seconds(3));

  raft::RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  for (uint64_t series = 0; series < 5; ++series) {
    EXPECT_EQ(cluster.node(victim)->state_machine().PointCount(series),
              leader->state_machine().PointCount(series))
        << "series " << series;
  }
}

TEST_F(WalRecoveryTest, VotesSurviveCrashes) {
  // A node must not vote twice in one term across a crash.
  Cluster cluster(Config(Protocol::kRaft, 64));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.RunFor(Millis(200));

  // Crash-restart a follower repeatedly while crashing leaders: safety
  // (single leader per term) must hold throughout.
  std::map<storage::Term, std::set<net::NodeId>> leaders_by_term;
  for (int round = 0; round < 4; ++round) {
    cluster.CrashLeader();
    cluster.RunFor(Seconds(2));
    for (int i = 0; i < 3; ++i) {
      raft::RaftNode* n = cluster.node(i);
      if (!n->crashed() && n->role() == raft::Role::kLeader) {
        leaders_by_term[n->current_term()].insert(n->id());
      }
    }
    for (int i = 0; i < 3; ++i) {
      if (cluster.node(i)->crashed()) cluster.RestartNode(i);
    }
    cluster.RunFor(Millis(300));
  }
  for (const auto& [term, ids] : leaders_by_term) {
    EXPECT_LE(ids.size(), 1u) << "term " << term;
  }
}

TEST_F(WalRecoveryTest, CommittedEntriesSurviveFullClusterCrash) {
  ClusterConfig config = Config(Protocol::kNbRaft, 65);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(600));
  cluster.StopAllClients();
  cluster.RunFor(Millis(400));

  raft::RaftNode* leader = cluster.leader();
  const storage::LogIndex committed = leader->commit_index();
  ASSERT_GT(committed, 10);
  std::vector<uint64_t> ids;
  for (storage::LogIndex i = 1; i <= committed; ++i) {
    ids.push_back(leader->log().AtUnchecked(i).request_id);
  }

  // Power failure: every node dies, then the whole cluster restarts.
  for (int i = 0; i < 3; ++i) cluster.CrashNode(i);
  for (int i = 0; i < 3; ++i) cluster.RestartNode(i);
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(15)));
  cluster.RunFor(Millis(300));

  raft::RaftNode* new_leader = cluster.leader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_GE(new_leader->log().LastIndex(), committed);
  for (storage::LogIndex i = 1; i <= committed; ++i) {
    EXPECT_EQ(new_leader->log().AtUnchecked(i).request_id,
              ids[static_cast<size_t>(i - 1)])
        << "committed entry changed at " << i;
  }
}

}  // namespace
}  // namespace nbraft::harness
