#include "harness/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "tsdb/ingest_record.h"

namespace nbraft::harness {
namespace {

TEST(WorkloadTest, PayloadMeetsTargetSize) {
  IngestWorkload workload({}, 1);
  for (size_t target : {256u, 1024u, 4096u, 65536u}) {
    const std::string payload = workload.MakePayload(target);
    EXPECT_EQ(payload.size(), target);
  }
}

TEST(WorkloadTest, PayloadParsesAsIngestBatch) {
  IngestWorkload::Options options;
  options.measurements_per_request = 8;
  IngestWorkload workload(options, 2);
  const std::string payload = workload.MakePayload(1024);
  auto batch = tsdb::ParseIngestBatch(payload);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 8u);
}

TEST(WorkloadTest, SeriesIdsWithinFleet) {
  IngestWorkload::Options options;
  options.series_count = 10;
  options.measurements_per_request = 32;
  IngestWorkload workload(options, 3);
  for (int i = 0; i < 20; ++i) {
    auto batch = tsdb::ParseIngestBatch(workload.MakePayload(2048));
    ASSERT_TRUE(batch.ok());
    for (const auto& m : *batch) EXPECT_LT(m.series_id, 10u);
  }
}

TEST(WorkloadTest, TimestampsAdvance) {
  IngestWorkload workload({}, 4);
  auto first = tsdb::ParseIngestBatch(workload.MakePayload(512));
  for (int i = 0; i < 50; ++i) workload.MakePayload(512);
  auto later = tsdb::ParseIngestBatch(workload.MakePayload(512));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(later.ok());
  EXPECT_GT((*later)[0].point.timestamp, (*first)[0].point.timestamp);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  IngestWorkload a({}, 7);
  IngestWorkload b({}, 7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.MakePayload(1024), b.MakePayload(1024));
  }
  IngestWorkload c({}, 8);
  EXPECT_NE(a.MakePayload(1024), c.MakePayload(1024));
}

TEST(WorkloadTest, ZipfSkewConcentratesSeries) {
  IngestWorkload::Options options;
  options.series_count = 100;
  options.zipf_skew = 1.2;
  options.measurements_per_request = 64;
  IngestWorkload workload(options, 9);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50; ++i) {
    auto batch = tsdb::ParseIngestBatch(workload.MakePayload(4096));
    ASSERT_TRUE(batch.ok());
    for (const auto& m : *batch) ++counts[m.series_id];
  }
  // The most popular series dominates under skew.
  int max_count = 0;
  int total = 0;
  for (const auto& [id, c] : counts) {
    max_count = std::max(max_count, c);
    total += c;
  }
  EXPECT_GT(max_count, total / 20);
}

TEST(WorkloadTest, CountsRequests) {
  IngestWorkload workload({}, 10);
  EXPECT_EQ(workload.requests_generated(), 0u);
  workload.MakePayload(100);
  workload.MakePayload(100);
  EXPECT_EQ(workload.requests_generated(), 2u);
}

}  // namespace
}  // namespace nbraft::harness
