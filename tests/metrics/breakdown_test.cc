#include "metrics/breakdown.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nbraft::metrics {
namespace {

TEST(BreakdownTest, StartsEmpty) {
  Breakdown b;
  EXPECT_EQ(b.GrandTotal(), 0);
  EXPECT_EQ(b.Proportion(Phase::kWaitFollower), 0.0);
}

TEST(BreakdownTest, EmptyProportionIsZeroNotNaN) {
  // Pin the empty-breakdown guard: every phase must report exactly 0.0
  // rather than 0/0 = NaN.
  Breakdown b;
  for (int i = 0; i < kNumPhases; ++i) {
    const double p = b.Proportion(static_cast<Phase>(i));
    EXPECT_FALSE(std::isnan(p));
    EXPECT_EQ(p, 0.0);
  }
}

TEST(BreakdownTest, AddAccumulates) {
  Breakdown b;
  b.Add(Phase::kWaitFollower, Micros(100));
  b.Add(Phase::kWaitFollower, Micros(50));
  b.Add(Phase::kApply, Micros(50));
  EXPECT_EQ(b.total(Phase::kWaitFollower), Micros(150));
  EXPECT_EQ(b.GrandTotal(), Micros(200));
  EXPECT_NEAR(b.Proportion(Phase::kWaitFollower), 0.75, 1e-9);
  EXPECT_NEAR(b.Proportion(Phase::kApply), 0.25, 1e-9);
}

TEST(BreakdownTest, NegativeDurationsClamped) {
  Breakdown b;
  b.Add(Phase::kParse, -5);
  EXPECT_EQ(b.total(Phase::kParse), 0);
}

TEST(BreakdownTest, MergeSumsAllPhases) {
  Breakdown a;
  Breakdown b;
  a.Add(Phase::kIndex, Micros(10));
  b.Add(Phase::kIndex, Micros(5));
  b.Add(Phase::kCommit, Micros(1));
  a.Merge(b);
  EXPECT_EQ(a.total(Phase::kIndex), Micros(15));
  EXPECT_EQ(a.total(Phase::kCommit), Micros(1));
}

TEST(BreakdownTest, ResetClears) {
  Breakdown b;
  b.Add(Phase::kAck, Micros(7));
  b.Reset();
  EXPECT_EQ(b.GrandTotal(), 0);
}

TEST(BreakdownTest, ProportionsSumToOne) {
  Breakdown b;
  for (int i = 0; i < kNumPhases; ++i) {
    b.Add(static_cast<Phase>(i), Micros(i + 1));
  }
  double sum = 0;
  for (int i = 0; i < kNumPhases; ++i) {
    sum += b.Proportion(static_cast<Phase>(i));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BreakdownTest, NotationMatchesPaperTableOne) {
  EXPECT_EQ(PhaseNotation(Phase::kGenClient), "t_gen(C)");
  EXPECT_EQ(PhaseNotation(Phase::kTransClientLeader), "t_trans(CL)");
  EXPECT_EQ(PhaseNotation(Phase::kParse), "t_prs(L)");
  EXPECT_EQ(PhaseNotation(Phase::kIndex), "t_idx(L)");
  EXPECT_EQ(PhaseNotation(Phase::kQueue), "t_queue(L)");
  EXPECT_EQ(PhaseNotation(Phase::kTransLeaderFollower), "t_trans(LF)");
  EXPECT_EQ(PhaseNotation(Phase::kWaitFollower), "t_wait(F)");
  EXPECT_EQ(PhaseNotation(Phase::kAppendFollower), "t_append(F)");
  EXPECT_EQ(PhaseNotation(Phase::kAck), "t_ack(L)");
  EXPECT_EQ(PhaseNotation(Phase::kCommit), "t_commit(L)");
  EXPECT_EQ(PhaseNotation(Phase::kApply), "t_apply(L)");
}

TEST(BreakdownTest, DescriptionsNonEmpty) {
  for (int i = 0; i < kNumPhases; ++i) {
    EXPECT_FALSE(PhaseDescription(static_cast<Phase>(i)).empty());
  }
}

TEST(BreakdownTest, ToJsonHasStableKeysAndNanosecondTotals) {
  Breakdown b;
  b.Add(Phase::kQueue, 1500);
  b.Add(Phase::kApply, 500);
  const std::string json = b.ToJson();
  EXPECT_NE(json.find("\"t_queue(L)\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"t_apply(L)\":500"), std::string::npos);
  EXPECT_NE(json.find("\"grand_total\":2000"), std::string::npos);
  // Zero phases stay present so the key set is run-independent.
  EXPECT_NE(json.find("\"t_gen(C)\":0"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(BreakdownTest, TableSortsLargestFirst) {
  Breakdown b;
  b.Add(Phase::kWaitFollower, Micros(900));
  b.Add(Phase::kParse, Micros(100));
  const std::string table = b.ToTable();
  const size_t wait_pos = table.find("t_wait(F)");
  const size_t parse_pos = table.find("t_prs(L)");
  ASSERT_NE(wait_pos, std::string::npos);
  ASSERT_NE(parse_pos, std::string::npos);
  EXPECT_LT(wait_pos, parse_pos);
}

}  // namespace
}  // namespace nbraft::metrics
