#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace nbraft::metrics {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.Mean(), 1000.0);
  EXPECT_NEAR(h.P50(), 1000, 64);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.Record(i);
  // Values below 16 land in exact unit buckets.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.max(), 15);
  EXPECT_EQ(h.count(), 16u);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, QuantilesOrdered) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBounded(1'000'000)));
  }
  EXPECT_LE(h.ValueAtQuantile(0.10), h.ValueAtQuantile(0.50));
  EXPECT_LE(h.ValueAtQuantile(0.50), h.ValueAtQuantile(0.95));
  EXPECT_LE(h.ValueAtQuantile(0.95), h.ValueAtQuantile(0.999));
  EXPECT_LE(h.ValueAtQuantile(0.999), h.max());
}

TEST(HistogramTest, RelativeErrorBounded) {
  Histogram h;
  const int64_t value = 123456789;
  h.Record(value);
  const int64_t p50 = h.P50();
  // 16 sub-buckets per octave => <= ~6.25% low-side error.
  EXPECT_LE(p50, value);
  EXPECT_GE(static_cast<double>(p50), value * 0.93);
}

TEST(HistogramTest, UniformQuantilesApproximate) {
  Histogram h;
  for (int64_t v = 1; v <= 100000; ++v) h.Record(v);
  EXPECT_NEAR(static_cast<double>(h.P50()), 50000.0, 50000.0 * 0.08);
  EXPECT_NEAR(static_cast<double>(h.P99()), 99000.0, 99000.0 * 0.08);
  EXPECT_NEAR(h.Mean(), 50000.5, 1.0);
}

TEST(HistogramTest, RecordManyEquivalentToLoop) {
  Histogram a;
  Histogram b;
  a.RecordMany(777, 500);
  for (int i = 0; i < 500; ++i) b.Record(777);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.P50(), b.P50());
  EXPECT_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(30);
  b.Record(40);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 40);
  EXPECT_NEAR(a.Mean(), 25.0, 0.001);
}

TEST(HistogramTest, MergeWithEmptyIsNoop) {
  Histogram a;
  a.Record(5);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 5);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1000000);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, ToJsonCarriesCountAndPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i * 1000);
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"min\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"max\":100000"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(HistogramTest, ToJsonOnEmptyIsAllZero) {
  Histogram h;
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":0"), std::string::npos);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  const int64_t big = int64_t{1} << 60;
  h.Record(big);
  EXPECT_EQ(h.max(), big);
  EXPECT_LE(h.P99(), big);
  EXPECT_GE(static_cast<double>(h.P99()), static_cast<double>(big) * 0.9);
}

}  // namespace
}  // namespace nbraft::metrics
