#include "nbraft/sliding_window.h"

#include <gtest/gtest.h>

namespace nbraft::raft {
namespace {

using storage::LogEntry;
using storage::MakeEntry;

TEST(SlidingWindowTest, StartsEmpty) {
  SlidingWindow w(6);
  EXPECT_EQ(w.capacity(), 6);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.Contains(8));
}

TEST(SlidingWindowTest, InsertAndLookup) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(9, 4, 4));
  ASSERT_TRUE(w.Contains(9));
  EXPECT_EQ(w.At(9).term, 4);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SlidingWindowTest, ReinsertReplaces) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(9, 4, 4));
  w.Insert(MakeEntry(9, 5, 4));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.At(9).term, 5);
}

// Paper Fig. 8: inserting Entry (11,7,6) removes the mismatched
// predecessor (10,5,4) and the mismatched successor (12,5,5) together with
// everything after it (13,5,5).
TEST(SlidingWindowTest, PaperFig8ContinuityPruning) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(10, 5, 4));
  w.Insert(MakeEntry(12, 5, 5));
  w.Insert(MakeEntry(13, 5, 5));
  ASSERT_EQ(w.size(), 3u);

  w.Insert(MakeEntry(11, 7, 6));

  EXPECT_FALSE(w.Contains(10)) << "predecessor (10,5,4) must be removed";
  EXPECT_FALSE(w.Contains(12)) << "successor (12,5,5) must be removed";
  EXPECT_FALSE(w.Contains(13)) << "entries after the successor go too";
  ASSERT_TRUE(w.Contains(11));
  EXPECT_EQ(w.size(), 1u);
}

TEST(SlidingWindowTest, MatchingNeighborsSurviveInsert) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(10, 5, 5));
  w.Insert(MakeEntry(12, 5, 5));
  w.Insert(MakeEntry(11, 5, 5));  // Chains with both neighbors.
  EXPECT_EQ(w.size(), 3u);
  EXPECT_TRUE(w.Contains(10));
  EXPECT_TRUE(w.Contains(11));
  EXPECT_TRUE(w.Contains(12));
}

// Paper Fig. 9: after appending Entry (8,5,4), the continuous window
// prefix (9,5,5), (10,6,5) flushes into the log; STRONG_ACCEPT reports
// (10, 6).
TEST(SlidingWindowTest, PaperFig9FlushablePrefix) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(9, 5, 5));
  w.Insert(MakeEntry(10, 6, 5));

  // Caller appended (8,5,4): the log tail is now (index 8, term 5).
  const auto flushed = w.TakeFlushablePrefix(8, 5);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].ToString(), "(9,5,5)");
  EXPECT_EQ(flushed[1].ToString(), "(10,6,5)");
  EXPECT_TRUE(w.empty());
}

TEST(SlidingWindowTest, FlushStopsAtGap) {
  SlidingWindow w(10);
  w.Insert(MakeEntry(9, 5, 5));
  w.Insert(MakeEntry(11, 5, 5));  // Gap at 10.
  const auto flushed = w.TakeFlushablePrefix(8, 5);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].index, 9);
  EXPECT_TRUE(w.Contains(11));
}

TEST(SlidingWindowTest, FlushStopsAtTermMismatch) {
  SlidingWindow w(10);
  w.Insert(MakeEntry(9, 5, 4));  // prev_term 4 but log tail term is 5.
  const auto flushed = w.TakeFlushablePrefix(8, 5);
  EXPECT_TRUE(flushed.empty());
  EXPECT_TRUE(w.Contains(9));
}

TEST(SlidingWindowTest, FlushNothingWhenHeadMissing) {
  SlidingWindow w(10);
  w.Insert(MakeEntry(12, 5, 5));
  EXPECT_TRUE(w.TakeFlushablePrefix(8, 5).empty());
}

// Paper Fig. 7: after the log is truncated by Entry (6,5,4), the window
// moves left: (9,4,4) is removed for its lower term, (13,5,5) for
// exceeding the window end (6 + 6 = 12).
TEST(SlidingWindowTest, PaperFig7WindowMovesLeft) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(9, 4, 4));
  w.Insert(MakeEntry(13, 5, 5));

  w.OnLogReshaped(/*new_last=*/6, /*min_term=*/5);

  EXPECT_FALSE(w.Contains(9)) << "(9,4,4): term below the new entry's 5";
  EXPECT_FALSE(w.Contains(13)) << "(13,5,5): beyond window end 12";
  EXPECT_TRUE(w.empty());
}

TEST(SlidingWindowTest, ReshapeKeepsValidEntries) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(9, 5, 5));
  w.Insert(MakeEntry(12, 5, 5));
  w.OnLogReshaped(6, 5);
  EXPECT_TRUE(w.Contains(9));
  EXPECT_TRUE(w.Contains(12));
}

TEST(SlidingWindowTest, ReshapeDropsEntriesBelowNewLast) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(9, 5, 5));
  w.OnLogReshaped(/*new_last=*/9, /*min_term=*/5);
  EXPECT_FALSE(w.Contains(9)) << "index 9 is now in the appended region";
}

TEST(SlidingWindowTest, ClearEmpties) {
  SlidingWindow w(6);
  w.Insert(MakeEntry(9, 5, 5));
  w.Clear();
  EXPECT_TRUE(w.empty());
}

TEST(SlidingWindowTest, IndicesAscending) {
  SlidingWindow w(20);
  w.Insert(MakeEntry(15, 5, 5));
  w.Insert(MakeEntry(10, 5, 5));
  w.Insert(MakeEntry(12, 5, 5));
  EXPECT_EQ(w.Indices(),
            (std::vector<storage::LogIndex>{10, 12, 15}));
}

TEST(SlidingWindowTest, ZeroCapacityDegeneratesToRaft) {
  SlidingWindow w(0);
  EXPECT_EQ(w.capacity(), 0);
  // OnLogReshaped with zero capacity drops everything above last.
  w.Insert(MakeEntry(5, 1, 1));
  w.OnLogReshaped(4, 1);
  EXPECT_FALSE(w.Contains(5));
}

TEST(SlidingWindowTest, SuccessorChainPrunedOnlyFromBreakPoint) {
  SlidingWindow w(20);
  w.Insert(MakeEntry(12, 5, 5));
  w.Insert(MakeEntry(13, 5, 5));
  w.Insert(MakeEntry(15, 6, 6));
  // Insert 11 with term 4: successor 12 expects prev_term 5 != 4, so 12
  // and everything after (13, 15) are removed.
  w.Insert(MakeEntry(11, 4, 4));
  EXPECT_TRUE(w.Contains(11));
  EXPECT_FALSE(w.Contains(12));
  EXPECT_FALSE(w.Contains(13));
  EXPECT_FALSE(w.Contains(15));
}

}  // namespace
}  // namespace nbraft::raft
