#include "nbraft/vote_list.h"

#include <gtest/gtest.h>

namespace nbraft::raft {
namespace {

constexpr net::NodeId kLeader = 0;
constexpr int kQuorum3 = 2;  // 3-node cluster.

TEST(VoteListTest, AddTupleRegistersLeaderAsStrong) {
  VoteList vl;
  vl.AddTuple(5, 2, kLeader, kQuorum3);
  ASSERT_TRUE(vl.Contains(5));
  const auto* t = vl.Find(5);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->term, 2);
  EXPECT_EQ(t->strong.count(kLeader), 1u);
  EXPECT_TRUE(t->weak.empty());
  EXPECT_EQ(vl.size(), 1u);
}

// Paper Fig. 10: Node2's WEAK_ACCEPT for entry 7 joins the leader's strong
// self-vote; weak ∪ strong reaches the 3-replica majority and the client
// is notified.
TEST(VoteListTest, PaperFig10WeakUnionStrongReachesMajority) {
  VoteList vl;
  vl.AddTuple(7, 2, /*leader=*/1, kQuorum3);
  EXPECT_TRUE(vl.AddWeak(7, /*node=*/2))
      << "leader(strong) + node2(weak) = majority of 3";
}

TEST(VoteListTest, WeakNotifiedOnlyOnce) {
  VoteList vl;
  vl.AddTuple(7, 2, 1, kQuorum3);
  EXPECT_TRUE(vl.AddWeak(7, 2));
  EXPECT_FALSE(vl.AddWeak(7, 3)) << "client already notified";
}

TEST(VoteListTest, WeakBelowQuorumDoesNotNotify) {
  VoteList vl;
  vl.AddTuple(7, 2, 1, /*required=*/3);  // 5-node majority.
  EXPECT_FALSE(vl.AddWeak(7, 2));
  EXPECT_TRUE(vl.AddWeak(7, 3));
}

TEST(VoteListTest, WeakForUnknownIndexIgnored) {
  VoteList vl;
  EXPECT_FALSE(vl.AddWeak(99, 2));
}

TEST(VoteListTest, DuplicateWeakFromSameNodeNotDoubleCounted) {
  VoteList vl;
  vl.AddTuple(7, 2, 1, /*required=*/3);
  EXPECT_FALSE(vl.AddWeak(7, 2));
  EXPECT_FALSE(vl.AddWeak(7, 2)) << "same node again";
}

TEST(VoteListTest, NodeInBothWeakAndStrongCountedOnce) {
  VoteList vl;
  vl.AddTuple(7, 2, 1, /*required=*/3);
  vl.AddStrongUpTo(7, 2, /*current_term=*/2);  // Node 2 strong.
  EXPECT_FALSE(vl.AddWeak(7, 2)) << "weak from a node already strong";
}

// Paper Fig. 12: a STRONG_ACCEPT with lastIndex = 5 marks node 2 strong on
// every tuple with index <= 5.
TEST(VoteListTest, PaperFig12StrongCoversPrefix) {
  VoteList vl;
  for (storage::LogIndex i = 3; i <= 7; ++i) vl.AddTuple(i, 2, 1, kQuorum3);
  const auto committed = vl.AddStrongUpTo(5, 2, /*current_term=*/2);
  EXPECT_EQ(committed, (std::vector<storage::LogIndex>{3, 4, 5}));
  EXPECT_FALSE(vl.Contains(5)) << "committed tuples are removed";
  EXPECT_TRUE(vl.Contains(6));
  EXPECT_TRUE(vl.Contains(7));
}

TEST(VoteListTest, CommitRequiresQuorum) {
  VoteList vl;
  vl.AddTuple(1, 1, 0, /*required=*/3);  // 5-node cluster.
  EXPECT_TRUE(vl.AddStrongUpTo(1, 1, 1).empty());
  const auto committed = vl.AddStrongUpTo(1, 2, 1);
  EXPECT_EQ(committed, (std::vector<storage::LogIndex>{1}));
}

TEST(VoteListTest, PerTupleRequiredCounts) {
  VoteList vl;
  // A CRaft fragment tuple needing all 3 nodes next to a plain one.
  vl.AddTuple(1, 1, 0, /*required=*/3);
  vl.AddTuple(2, 1, 0, /*required=*/2);
  vl.AddStrongUpTo(2, 1, 1);
  // Node 1 strong: tuple 2 has quorum (0,1) but tuple 1 needs 3 — nothing
  // commits because commits are ordered.
  EXPECT_TRUE(vl.Contains(1));
  EXPECT_TRUE(vl.Contains(2));
  const auto committed = vl.AddStrongUpTo(2, 2, 1);
  EXPECT_EQ(committed, (std::vector<storage::LogIndex>{1, 2}));
}

TEST(VoteListTest, OldTermTupleCommitsOnlyTransitively) {
  VoteList vl;
  vl.AddTuple(1, 1, 0, kQuorum3);  // Old term.
  vl.AddTuple(2, 2, 0, kQuorum3);  // Current term.
  // Quorum on the old-term tuple alone must not commit it (Raft §5.4.2).
  EXPECT_TRUE(vl.AddStrongUpTo(1, 1, /*current_term=*/2).empty());
  EXPECT_TRUE(vl.Contains(1));
  // Quorum on the current-term tuple commits both.
  const auto committed = vl.AddStrongUpTo(2, 1, 2);
  EXPECT_EQ(committed, (std::vector<storage::LogIndex>{1, 2}));
}

TEST(VoteListTest, CommitsAreOrderedAcrossCalls) {
  VoteList vl;
  vl.AddTuple(1, 1, 0, kQuorum3);
  vl.AddTuple(2, 1, 0, kQuorum3);
  vl.AddTuple(3, 1, 0, kQuorum3);
  auto c1 = vl.AddStrongUpTo(3, 1, 1);
  EXPECT_EQ(c1, (std::vector<storage::LogIndex>{1, 2, 3}));
  EXPECT_TRUE(vl.empty());
}

// Paper Fig. 11: a reply with a higher term means leadership changed and
// the VoteList is cleaned.
TEST(VoteListTest, PaperFig11ClearOnLeaderChange) {
  VoteList vl;
  vl.AddTuple(7, 2, 1, kQuorum3);
  vl.AddTuple(8, 2, 1, kQuorum3);
  vl.Clear();
  EXPECT_TRUE(vl.empty());
  EXPECT_FALSE(vl.Contains(7));
}

TEST(VoteListTest, RemoveFrontDropsWithoutCommit) {
  VoteList vl;
  vl.AddTuple(4, 1, 0, kQuorum3);
  vl.AddTuple(5, 1, 0, kQuorum3);
  EXPECT_EQ(vl.FrontIndex(), 4);
  vl.RemoveFront();
  EXPECT_EQ(vl.FrontIndex(), 5);
  vl.RemoveFront();
  EXPECT_EQ(vl.FrontIndex(), -1);
  vl.RemoveFront();  // No-op on empty.
}

TEST(VoteListTest, ForEachVisitsInOrderAndAllowsMutation) {
  VoteList vl;
  vl.AddTuple(3, 1, 0, 5);
  vl.AddTuple(4, 1, 0, 5);
  std::vector<storage::LogIndex> visited;
  vl.ForEach([&](storage::LogIndex index, VoteList::Tuple* t) {
    visited.push_back(index);
    t->required = 1;  // Lower the requirement (degraded-mode transition).
  });
  EXPECT_EQ(visited, (std::vector<storage::LogIndex>{3, 4}));
  // Leader-only strong votes now satisfy the lowered requirement.
  const auto committed = vl.CollectCommittable(/*current_term=*/1);
  EXPECT_EQ(committed, (std::vector<storage::LogIndex>{3, 4}));
  EXPECT_TRUE(vl.empty());
}

TEST(VoteListTest, CollectCommittableWithoutSatisfiedTuplesIsEmpty) {
  VoteList vl;
  vl.AddTuple(1, 1, 0, 3);
  EXPECT_TRUE(vl.CollectCommittable(1).empty());
  EXPECT_TRUE(vl.Contains(1));
}

TEST(VoteListTest, CollectCommittableRespectsTermRule) {
  VoteList vl;
  vl.AddTuple(1, 1, 0, 1);  // Old-term tuple, requirement already met.
  EXPECT_TRUE(vl.CollectCommittable(/*current_term=*/2).empty())
      << "an old-term tuple alone must not commit";
  EXPECT_EQ(vl.CollectCommittable(/*current_term=*/1),
            (std::vector<storage::LogIndex>{1}));
}

TEST(VoteListTest, StrongForFutureIndexIgnored) {
  VoteList vl;
  vl.AddTuple(10, 1, 0, kQuorum3);
  EXPECT_TRUE(vl.AddStrongUpTo(5, 1, 1).empty());
  EXPECT_EQ(vl.Find(10)->strong.size(), 1u);
}

}  // namespace
}  // namespace nbraft::raft
