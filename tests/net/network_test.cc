#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nbraft::net {
namespace {

struct Delivery {
  NodeId from;
  SimTime at;
  int tag;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkConfig QuietConfig() {
    NetworkConfig config;
    config.jitter_mean = 0;  // Deterministic latency for exact assertions.
    config.base_latency = Millis(1);
    config.nic_bandwidth_bps = 8e9;  // 1 byte / ns.
    return config;
  }
};

TEST_F(NetworkTest, DeliversWithLatencyAndSerialization) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  std::vector<Delivery> got;
  net.RegisterEndpoint(2, [&](Message&& m) {
    got.push_back({m.from, sim.Now(), *m.payload.Get<int>()});
  });
  net.Send(1, 2, 1000, 7);
  sim.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, 1);
  EXPECT_EQ(got[0].tag, 7);
  // 1000 B at 1 B/ns = 1us egress + 1ms latency + 1us ingress.
  EXPECT_EQ(got[0].at, Millis(1) + Micros(2));
}

TEST_F(NetworkTest, EgressSerializesBackToBackSends) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  std::vector<SimTime> at;
  net.RegisterEndpoint(2, [&](Message&&) { at.push_back(sim.Now()); });
  net.Send(1, 2, 1000, 0);
  net.Send(1, 2, 1000, 1);
  sim.Run();
  ASSERT_EQ(at.size(), 2u);
  // Second message's egress starts after the first finishes.
  EXPECT_EQ(at[1] - at[0], Micros(1));
}

TEST_F(NetworkTest, JitterReordersMessages) {
  NetworkConfig config;
  config.base_latency = Micros(100);
  config.jitter_mean = Micros(200);
  config.nic_bandwidth_bps = 10e9;
  sim::Simulator sim(7);
  SimNetwork net(&sim, config);
  std::vector<int> order;
  net.RegisterEndpoint(2, [&](Message&& m) {
    order.push_back(*m.payload.Get<int>());
  });
  for (int i = 0; i < 200; ++i) net.Send(1, 2, 100, i);
  sim.Run();
  ASSERT_EQ(order.size(), 200u);
  int inversions = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) ++inversions;
  }
  EXPECT_GT(inversions, 10) << "jitter should reorder some messages";
}

TEST_F(NetworkTest, UnregisteredEndpointDrops) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  net.Send(1, 2, 100, 0);
  sim.Run();
  EXPECT_EQ(net.messages_delivered(), 0u);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST_F(NetworkTest, DownSenderAndReceiverDrop) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  int got = 0;
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  net.SetNodeUp(1, false);
  EXPECT_EQ(net.Send(1, 2, 100, 0), -1);
  net.SetNodeUp(1, true);
  net.SetNodeUp(2, false);
  EXPECT_EQ(net.Send(1, 2, 100, 0), -1);
  sim.Run();
  EXPECT_EQ(got, 0);
}

TEST_F(NetworkTest, CrashInFlightDropsAtDelivery) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  int got = 0;
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  net.Send(1, 2, 100, 0);
  sim.After(Micros(10), [&] { net.SetNodeUp(2, false); });
  sim.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST_F(NetworkTest, RestartedNodeReceivesAgain) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  int got = 0;
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  net.SetNodeUp(2, false);
  net.SetNodeUp(2, true);
  net.Send(1, 2, 100, 0);
  sim.Run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, LinkCutBlocksBothDirections) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  int got = 0;
  net.RegisterEndpoint(1, [&](Message&&) { ++got; });
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  net.SetLinkCut(1, 2, true);
  EXPECT_EQ(net.Send(1, 2, 10, 0), -1);
  EXPECT_EQ(net.Send(2, 1, 10, 0), -1);
  net.SetLinkCut(1, 2, false);
  net.Send(1, 2, 10, 0);
  sim.Run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, OneWayCutBlocksOnlyThatDirection) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  int got = 0;
  net.RegisterEndpoint(1, [&](Message&&) { ++got; });
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  // The classic asymmetric failure: 1 can send to 2, but cannot hear back.
  net.SetOneWayCut(2, 1, true);
  EXPECT_NE(net.Send(1, 2, 10, 0), -1);
  EXPECT_EQ(net.Send(2, 1, 10, 0), -1);
  net.SetOneWayCut(2, 1, false);
  net.Send(2, 1, 10, 0);
  sim.Run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetworkTest, SetLinkCutUnidirectionalMatchesOneWayCut) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  int got = 0;
  net.RegisterEndpoint(1, [&](Message&&) { ++got; });
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  net.SetLinkCut(1, 2, true, /*bidirectional=*/false);
  EXPECT_EQ(net.Send(1, 2, 10, 0), -1);
  EXPECT_NE(net.Send(2, 1, 10, 0), -1);
  // Healing through the symmetric API must not clear the directed cut.
  net.SetLinkCut(1, 2, false, /*bidirectional=*/true);
  EXPECT_EQ(net.Send(1, 2, 10, 0), -1);
  net.SetLinkCut(1, 2, false, /*bidirectional=*/false);
  EXPECT_NE(net.Send(1, 2, 10, 0), -1);
  sim.Run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetworkTest, ExtraDelayShiftsDelivery) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  std::vector<SimTime> at;
  net.RegisterEndpoint(2, [&](Message&&) { at.push_back(sim.Now()); });
  net.Send(1, 2, 1000, 0);
  sim.Run();
  net.set_extra_delay(Millis(5));
  net.Send(1, 2, 1000, 1);
  sim.Run();
  net.set_extra_delay(0);
  net.Send(1, 2, 1000, 2);
  sim.Run();
  ASSERT_EQ(at.size(), 3u);
  // Baseline path cost t0: 1us egress + 1ms latency + 1us ingress. The
  // second send departs at t0 and the storm adds exactly 5ms on top.
  const SimTime t0 = at[0];
  EXPECT_EQ(at[1], t0 * 2 + Millis(5));
  EXPECT_EQ(at[2], at[1] + t0);
}

TEST_F(NetworkTest, IsolationBlocksAllTraffic) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  int got = 0;
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  net.RegisterEndpoint(3, [&](Message&&) { ++got; });
  net.Isolate(1, true);
  EXPECT_EQ(net.Send(1, 2, 10, 0), -1);
  EXPECT_EQ(net.Send(3, 1, 10, 0), -1);
  net.Send(3, 2, 10, 0);  // Unrelated pair unaffected.
  net.Isolate(1, false);
  net.Send(1, 2, 10, 0);
  sim.Run();
  EXPECT_EQ(got, 2);
}

TEST_F(NetworkTest, DropProbabilityOneDropsEverything) {
  NetworkConfig config = QuietConfig();
  config.drop_probability = 1.0;
  sim::Simulator sim(1);
  SimNetwork net(&sim, config);
  int got = 0;
  net.RegisterEndpoint(2, [&](Message&&) { ++got; });
  for (int i = 0; i < 50; ++i) net.Send(1, 2, 10, i);
  sim.Run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.messages_dropped(), 50u);
}

TEST_F(NetworkTest, PairLatencyOverride) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  SimTime arrival = 0;
  net.RegisterEndpoint(2, [&](Message&&) { arrival = sim.Now(); });
  net.SetPairLatency(1, 2, Millis(13));
  net.Send(1, 2, 1000, 0);
  sim.Run();
  EXPECT_EQ(arrival, Millis(13) + Micros(2));
}

TEST_F(NetworkTest, GeoTopologySetsCrossRegionLatencies) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  ApplyGeoTopology(&net, {0, 1, 2, 3, 4});
  SimTime arrival = 0;
  net.RegisterEndpoint(1, [&](Message&&) { arrival = sim.Now(); });
  net.Send(0, 1, 1000, 0);  // Beijing -> Guangzhou, 23 ms.
  sim.Run();
  EXPECT_GT(arrival, Millis(22));
  EXPECT_LT(arrival, Millis(25));
}

TEST_F(NetworkTest, StatsCountBytes) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  net.RegisterEndpoint(2, [](Message&&) {});
  net.Send(1, 2, 1234, 0);
  sim.Run();
  EXPECT_EQ(net.bytes_sent(), 1234u);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST_F(NetworkTest, StatsInvariantHoldsThroughDropsAndDeliveries) {
  NetworkConfig config = QuietConfig();
  config.drop_probability = 0.3;
  sim::Simulator sim(11);
  SimNetwork net(&sim, config);
  net.RegisterEndpoint(2, [](Message&&) {});
  // Mix of delivered, randomly dropped, dropped-at-delivery (unregistered
  // endpoint 3) and dropped-in-flight (4 crashes mid-run).
  net.RegisterEndpoint(4, [](Message&&) {});
  for (int i = 0; i < 100; ++i) {
    net.Send(1, 2, 100, i);
    net.Send(1, 3, 100, i);
    net.Send(1, 4, 100, i);
  }
  const NetStats& stats = net.stats();
  EXPECT_GT(stats.messages_in_flight, 0u);
  EXPECT_TRUE(stats.Consistent());
  sim.After(Micros(500), [&] { net.SetNodeUp(4, false); });
  sim.Run();
  EXPECT_EQ(stats.messages_in_flight, 0u);
  EXPECT_TRUE(stats.Consistent());
  EXPECT_EQ(stats.messages_sent, 300u);
  EXPECT_EQ(stats.messages_sent,
            stats.messages_delivered + stats.messages_dropped);
  EXPECT_GT(stats.messages_delivered, 0u);
  EXPECT_GT(stats.messages_dropped, 100u);  // All of node 3's, plus random.
}

TEST_F(NetworkTest, SentAtRecordsSendTime) {
  sim::Simulator sim(1);
  SimNetwork net(&sim, QuietConfig());
  SimTime sent_at = -1;
  net.RegisterEndpoint(2, [&](Message&& m) { sent_at = m.sent_at; });
  sim.At(Millis(5), [&] { net.Send(1, 2, 10, 0); });
  sim.Run();
  EXPECT_EQ(sent_at, Millis(5));
}

TEST(NetworkIdTest, ClientIdPredicate) {
  EXPECT_FALSE(IsClientId(0));
  EXPECT_FALSE(IsClientId(9999));
  EXPECT_TRUE(IsClientId(kClientIdBase));
  EXPECT_TRUE(IsClientId(kClientIdBase + 500));
}

}  // namespace
}  // namespace nbraft::net
