#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace nbraft::obs {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ExporterTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : cleanup_) std::remove(path.c_str());
  }

  std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "/" + name;
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

TEST_F(ExporterTest, ChromeTraceContainsSpansInstantsAndCounters) {
  sim::Simulator sim(1);
  Tracer tracer(&sim);
  tracer.RecordSpan(metrics::Phase::kAppendFollower, 2, 5, 17, 99,
                    Micros(10), Micros(25));
  tracer.RecordInstantAt("window_insert", 2, Micros(12), 17, 3);

  Registry registry;
  registry.GetCounter("appends")->Increment(4);
  registry.AddSource("depth", []() { return 7.0; });
  Sampler sampler(&sim, &registry, Millis(1));
  sampler.Start();
  sim.RunUntil(Millis(2));

  ExportInputs inputs;
  inputs.tracer = &tracer;
  inputs.registry = &registry;
  inputs.sampler = &sampler;
  inputs.endpoint_name = [](int32_t id) {
    return "node " + std::to_string(id);
  };

  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(WriteChromeTrace(path, inputs).ok());
  const std::string body = Slurp(path);

  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  // The span: a complete event with duration 15us on pid 2.
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("t_append(F)"), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(body.find("window_insert"), std::string::npos);
  // Sampler series become counter tracks.
  EXPECT_NE(body.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(body.find("depth"), std::string::npos);
  // Endpoint naming made it into the metadata.
  EXPECT_NE(body.find("node 2"), std::string::npos);
  // Valid JSON shape at the extremes.
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '\n');
}

TEST_F(ExporterTest, JsonlEmitsOneObjectPerLine) {
  Tracer tracer(nullptr);
  tracer.RecordSpan(metrics::Phase::kCommit, 0, 1, 2, 3, 0, 100);
  tracer.RecordInstantAt("net_send", 0, 50, 1, 64);

  Registry registry;
  registry.GetCounter("x")->Increment();
  registry.GetGauge("y")->Set(1.5);

  ExportInputs inputs;
  inputs.tracer = &tracer;
  inputs.registry = &registry;

  const std::string path = TempPath("trace.jsonl");
  ASSERT_TRUE(WriteJsonl(path, inputs).ok());
  const std::string body = Slurp(path);

  std::istringstream lines(body);
  std::string line;
  int spans = 0, instants = 0, counters = 0, gauges = 0, metas = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"type\":\"span\"") != std::string::npos) ++spans;
    if (line.find("\"type\":\"instant\"") != std::string::npos) ++instants;
    if (line.find("\"type\":\"counter\"") != std::string::npos) ++counters;
    if (line.find("\"type\":\"gauge\"") != std::string::npos) ++gauges;
    if (line.find("\"type\":\"meta\"") != std::string::npos) ++metas;
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(gauges, 1);
  EXPECT_EQ(metas, 1);
}

TEST_F(ExporterTest, UnwritablePathReturnsIoError) {
  Tracer tracer(nullptr);
  ExportInputs inputs;
  inputs.tracer = &tracer;
  const Status s =
      WriteChromeTrace("/nonexistent-dir/never/trace.json", inputs);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace nbraft::obs
