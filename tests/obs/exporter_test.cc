#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/names.h"
#include "obs/registry.h"
#include "obs/series_store.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace nbraft::obs {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ExporterTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& path : cleanup_) std::remove(path.c_str());
  }

  std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + "/" + name;
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

TEST_F(ExporterTest, ChromeTraceContainsSpansInstantsAndCounters) {
  sim::Simulator sim(1);
  Tracer tracer(&sim);
  tracer.RecordSpan(metrics::Phase::kAppendFollower, 2, 5, 17, 99,
                    Micros(10), Micros(25));
  tracer.RecordInstantAt(names::kWindowInsert, 2, Micros(12), 17, 3);

  Registry registry;
  registry.GetCounter("appends")->Increment(4);
  registry.AddSource("depth", []() { return 7.0; });
  Sampler sampler(&sim, &registry, Millis(1));
  sampler.Start();
  sim.RunUntil(Millis(2));

  ExportInputs inputs;
  inputs.tracer = &tracer;
  inputs.registry = &registry;
  inputs.sampler = &sampler;
  inputs.endpoint_name = [](int32_t id) {
    return "node " + std::to_string(id);
  };

  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(WriteChromeTrace(path, inputs).ok());
  const std::string body = Slurp(path);

  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  // The span: a complete event with duration 15us on pid 2.
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(body.find("t_append(F)"), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(body.find(names::kWindowInsert), std::string::npos);
  // Sampler series become counter tracks.
  EXPECT_NE(body.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(body.find("depth"), std::string::npos);
  // Endpoint naming made it into the metadata.
  EXPECT_NE(body.find("node 2"), std::string::npos);
  // Valid JSON shape at the extremes.
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '\n');
}

TEST_F(ExporterTest, JsonlEmitsOneObjectPerLine) {
  Tracer tracer(nullptr);
  tracer.RecordSpan(metrics::Phase::kCommit, 0, 1, 2, 3, 0, 100);
  tracer.RecordInstantAt(names::kMsgSend, 0, 50, 1, 64);

  Registry registry;
  registry.GetCounter("x")->Increment();
  registry.GetGauge("y")->Set(1.5);

  ExportInputs inputs;
  inputs.tracer = &tracer;
  inputs.registry = &registry;

  const std::string path = TempPath("trace.jsonl");
  ASSERT_TRUE(WriteJsonl(path, inputs).ok());
  const std::string body = Slurp(path);

  std::istringstream lines(body);
  std::string line;
  int spans = 0, instants = 0, counters = 0, gauges = 0, metas = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"type\":\"span\"") != std::string::npos) ++spans;
    if (line.find("\"type\":\"instant\"") != std::string::npos) ++instants;
    if (line.find("\"type\":\"counter\"") != std::string::npos) ++counters;
    if (line.find("\"type\":\"gauge\"") != std::string::npos) ++gauges;
    if (line.find("\"type\":\"meta\"") != std::string::npos) ++metas;
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_EQ(gauges, 1);
  EXPECT_EQ(metas, 1);
}

TEST_F(ExporterTest, EmptyInputsProduceValidFiles) {
  // Every exporter must tolerate a cluster with all collectors off.
  ExportInputs inputs;

  const std::string trace = TempPath("empty_trace.json");
  ASSERT_TRUE(WriteChromeTrace(trace, inputs).ok());
  const std::string trace_body = Slurp(trace);
  EXPECT_NE(trace_body.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(trace_body.front(), '{');

  const std::string jsonl = TempPath("empty.jsonl");
  ASSERT_TRUE(WriteJsonl(jsonl, inputs).ok());
  EXPECT_TRUE(Slurp(jsonl).empty());

  const std::string prom = TempPath("empty.prom");
  ASSERT_TRUE(WritePrometheusText(prom, inputs).ok());
  EXPECT_TRUE(Slurp(prom).empty());

  const std::string json = TempPath("empty_metrics.json");
  ASSERT_TRUE(WriteMetricsJson(json, inputs).ok());
  const std::string json_body = Slurp(json);
  EXPECT_NE(json_body.find("\"nbraft-obs-metrics-v1\""), std::string::npos);
  EXPECT_NE(json_body.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(json_body.find("\"series\":[]"), std::string::npos);
}

TEST_F(ExporterTest, PrometheusTurnsNodeSuffixIntoLabel) {
  Registry registry;
  registry.GetGauge("raft.window_occupancy.node2")->Set(37);
  registry.GetGauge("raft.window_occupancy.node11")->Set(4);
  registry.GetCounter("chaos.faults_injected")->Increment(3);

  ExportInputs inputs;
  inputs.registry = &registry;
  const std::string path = TempPath("labels.prom");
  ASSERT_TRUE(WritePrometheusText(path, inputs).ok());
  const std::string body = Slurp(path);

  EXPECT_NE(body.find("raft_window_occupancy{node=\"2\"} 37"),
            std::string::npos);
  EXPECT_NE(body.find("raft_window_occupancy{node=\"11\"} 4"),
            std::string::npos);
  EXPECT_NE(body.find("chaos_faults_injected 3"), std::string::npos);
  // One TYPE header per family, even with two labeled series.
  size_t headers = 0;
  size_t pos = 0;
  while ((pos = body.find("# TYPE raft_window_occupancy", pos)) !=
         std::string::npos) {
    ++headers;
    pos += 1;
  }
  EXPECT_EQ(headers, 1u);
}

TEST_F(ExporterTest, MetricsJsonEmitsDecodedCompressedSeries) {
  sim::Simulator sim(1);
  Registry registry;
  int tick = 0;
  registry.AddSource("raft.apply_lag",
                     [&tick]() { return 0.125 * tick++; });
  Sampler sampler(&sim, &registry, Millis(1));
  SeriesStore store(/*chunk_points=*/4);
  sampler.set_series_store(&store);
  sampler.Start();
  sim.RunUntil(Millis(10));

  ExportInputs inputs;
  inputs.registry = &registry;
  inputs.sampler = &sampler;
  const std::string path = TempPath("metrics.json");
  ASSERT_TRUE(WriteMetricsJson(path, inputs).ok());
  const std::string body = Slurp(path);

  EXPECT_NE(body.find("\"name\":\"raft.apply_lag\""), std::string::npos);
  // Every raw sample reappears, decoded from the Gorilla chunks. 0.125
  // steps are exact in binary so the %.17g text is exact too.
  for (const Sampler::Sample& s : sampler.samples()) {
    char point[64];
    std::snprintf(point, sizeof(point), "[%lld,%.17g]",
                  static_cast<long long>(s.at), s.values[0]);
    EXPECT_NE(body.find(point), std::string::npos) << point;
  }
  EXPECT_NE(body.find("\"encoded_bytes\""), std::string::npos);
}

TEST_F(ExporterTest, UnwritablePathReturnsIoError) {
  Tracer tracer(nullptr);
  ExportInputs inputs;
  inputs.tracer = &tracer;
  const Status s =
      WriteChromeTrace("/nonexistent-dir/never/trace.json", inputs);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace nbraft::obs
