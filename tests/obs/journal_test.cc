// The flight recorder: per-node rings with wraparound, the global seq
// order that makes post-mortem dumps deterministic, the JSONL/timeline
// exports, and the naming-scheme conformance test that pins the canonical
// `subsystem.noun_verb` vocabulary across tracer, registry and journal.

#include "obs/journal.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/names.h"
#include "sim/simulator.h"

namespace nbraft::obs {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---- Naming scheme conformance -------------------------------------------

bool FollowsScheme(const std::string& name) {
  static constexpr const char* kSubsystems[] = {
      "net.",    "raft.",  "election.",  "storage.",
      "client.", "chaos.", "sim.",       "membership."};
  bool prefixed = false;
  for (const char* p : kSubsystems) {
    if (name.rfind(p, 0) == 0) prefixed = true;
  }
  if (!prefixed) return false;
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if (std::islower(u) == 0 && std::isdigit(u) == 0 && c != '_' &&
        c != '.') {
      return false;
    }
  }
  return true;
}

TEST(NamingSchemeTest, EveryCanonicalNameFollowsSubsystemNounVerb) {
  for (size_t i = 0; i < names::kAllNamesCount; ++i) {
    EXPECT_TRUE(FollowsScheme(names::kAllNames[i]))
        << "name violates subsystem.noun_verb scheme: "
        << names::kAllNames[i];
  }
}

TEST(NamingSchemeTest, EveryJournalKindNameFollowsScheme) {
  for (int k = 0; k < static_cast<int>(JournalEventKind::kNumKinds); ++k) {
    const char* name = Journal::KindName(static_cast<JournalEventKind>(k));
    EXPECT_TRUE(FollowsScheme(name)) << "kind " << k << ": " << name;
  }
}

TEST(NamingSchemeTest, JournalAndTracerShareVocabulary) {
  // The journal kind names and the tracer instant names are the same
  // vocabulary — a grep for "raft.window_insert" finds both streams.
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kWindowInsert),
               names::kWindowInsert);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kWindowEvict),
               names::kWindowEvict);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kWindowFlush),
               names::kWindowFlush);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kRpcSend),
               names::kMsgSend);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kRpcRecv),
               names::kMsgRecv);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kRpcDrop),
               names::kMsgDrop);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kElectionStart),
               names::kElectionStart);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kLeaderElected),
               names::kLeaderElected);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kNemesisFault),
               names::kChaosFault);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kNemesisHeal),
               names::kChaosHeal);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kPreVoteStart),
               names::kPreVoteStart);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kPreVoteGrant),
               names::kPreVoteGrant);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kPreVoteReject),
               names::kPreVoteReject);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kLeaseReject),
               names::kLeaseReject);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kQuorumLost),
               names::kQuorumLost);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kConfigPropose),
               names::kConfigPropose);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kConfigJoint),
               names::kConfigJoint);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kConfigCommit),
               names::kConfigCommit);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kLearnerAdd),
               names::kLearnerAdd);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kLearnerPromote),
               names::kLearnerPromote);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kTransferStart),
               names::kTransferStart);
  EXPECT_STREQ(Journal::KindName(JournalEventKind::kTransferDone),
               names::kTransferDone);
}

// ---- Ring behavior -------------------------------------------------------

TEST(JournalTest, RecordsInOrderAndStampsVirtualTime) {
  sim::Simulator sim(1);
  Journal journal(&sim, 3);
  sim.RunUntil(Micros(5));
  journal.Record(JournalEventKind::kElectionStart, 0, -1, 2);
  journal.Record(JournalEventKind::kLeaderElected, 0, -1, 2);

  const auto events = journal.NodeEvents(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, JournalEventKind::kElectionStart);
  EXPECT_EQ(events[0].at, Micros(5));
  EXPECT_EQ(events[0].a, 2);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(journal.events_recorded(), 2u);
  EXPECT_EQ(journal.events_dropped(), 0u);
}

TEST(JournalTest, RingWrapsAroundKeepingNewestAndCountingDropped) {
  Journal::Options options;
  options.per_node_capacity = 8;
  Journal journal(nullptr, 2, options);
  for (int i = 0; i < 20; ++i) {
    journal.RecordAt(i, JournalEventKind::kCommitAdvance, 0, -1, i);
  }

  const auto events = journal.NodeEvents(0);
  ASSERT_EQ(events.size(), 8u);
  // The 8 newest survive, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<int64_t>(12 + i));
  }
  EXPECT_EQ(journal.events_recorded(), 20u);
  EXPECT_EQ(journal.events_dropped(), 12u);
}

TEST(JournalTest, ChattyNodeCannotEvictAnotherNodesHistory) {
  Journal::Options options;
  options.per_node_capacity = 4;
  Journal journal(nullptr, 2, options);
  journal.RecordAt(1, JournalEventKind::kLeaderElected, 1, -1, 7);
  for (int i = 0; i < 100; ++i) {
    journal.RecordAt(2 + i, JournalEventKind::kWindowInsert, 0, -1, i);
  }
  // Node 1's single event is intact despite node 0 overflowing 25x.
  const auto events = journal.NodeEvents(1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, JournalEventKind::kLeaderElected);
  EXPECT_EQ(events[0].a, 7);
}

TEST(JournalTest, OutOfRangeNodesLandInTheSharedClusterRing) {
  Journal journal(nullptr, 3);
  journal.RecordAt(1, JournalEventKind::kViolation, -1, -1, 1);
  journal.RecordAt(2, JournalEventKind::kNemesisFault, 10001, -1, 0, 0);
  const auto shared = journal.NodeEvents(journal.num_nodes());
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_EQ(shared[0].kind, JournalEventKind::kViolation);
  EXPECT_EQ(shared[1].kind, JournalEventKind::kNemesisFault);
  EXPECT_TRUE(journal.NodeEvents(0).empty());
}

TEST(JournalTest, MergedEventsInterleaveRingsInRecordOrder) {
  Journal journal(nullptr, 3);
  journal.RecordAt(5, JournalEventKind::kRpcSend, 0, 1, 0, 100);
  journal.RecordAt(5, JournalEventKind::kRpcRecv, 1, 0, 0, 100);
  journal.RecordAt(6, JournalEventKind::kViolation, -1, -1, 1);
  journal.RecordAt(7, JournalEventKind::kRpcSend, 2, 0, 1, 50);

  const auto merged = journal.MergedEvents();
  ASSERT_EQ(merged.size(), 4u);
  for (size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LT(merged[i - 1].seq, merged[i].seq);
    EXPECT_LE(merged[i - 1].at, merged[i].at);
  }
  EXPECT_EQ(merged[0].node, 0);
  EXPECT_EQ(merged[1].node, 1);
  EXPECT_EQ(merged[2].node, -1);
  EXPECT_EQ(merged[3].node, 2);
}

TEST(JournalTest, DisabledJournalRecordsNothing) {
  Journal journal(nullptr, 2);
  journal.set_enabled(false);
  journal.RecordAt(1, JournalEventKind::kCrash, 0);
  EXPECT_EQ(journal.events_recorded(), 0u);
  EXPECT_TRUE(journal.NodeEvents(0).empty());
}

// ---- JSONL / timeline export ---------------------------------------------

TEST(JournalTest, JsonlLeadsWithMetaAndEmitsOneObjectPerLine) {
  Journal journal(nullptr, 2);
  journal.RecordAt(Micros(1), JournalEventKind::kRpcSend, 0, 1,
                   static_cast<int64_t>(JournalRpc::kHeartbeat), 64);
  journal.RecordAt(Micros(2), JournalEventKind::kCommitAdvance, 1, -1, 9, 3);

  const std::string path = TempPath("journal.jsonl");
  ASSERT_TRUE(journal.WriteJsonl(path, Micros(10), 0).ok());
  const std::string body = Slurp(path);
  std::remove(path.c_str());

  std::istringstream lines(body);
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    all.push_back(line);
  }
  ASSERT_EQ(all.size(), 3u);
  EXPECT_NE(all[0].find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(all[0].find("\"events_recorded\":2"), std::string::npos);
  EXPECT_NE(all[0].find("\"events_emitted\":2"), std::string::npos);
  // RPC events decode their type name; others carry raw a/b.
  EXPECT_NE(all[1].find("\"rpc\":\"heartbeat\""), std::string::npos);
  EXPECT_NE(all[1].find("\"kind\":\"net.msg_send\""), std::string::npos);
  EXPECT_NE(all[2].find("\"kind\":\"raft.commit_advance\""),
            std::string::npos);
  EXPECT_NE(all[2].find("\"a\":9"), std::string::npos);
}

TEST(JournalTest, JsonlMetaExposesRingTruncation) {
  Journal::Options options;
  options.per_node_capacity = 4;
  Journal journal(nullptr, 1, options);
  for (int i = 0; i < 10; ++i) {
    journal.RecordAt(i, JournalEventKind::kWindowInsert, 0, -1, i, i);
  }
  const std::string path = TempPath("journal_trunc.jsonl");
  ASSERT_TRUE(journal.WriteJsonl(path, 100, 0).ok());
  const std::string body = Slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(body.find("\"events_recorded\":10"), std::string::npos);
  EXPECT_NE(body.find("\"events_dropped\":6"), std::string::npos);
  EXPECT_NE(body.find("\"events_emitted\":4"), std::string::npos);
}

TEST(JournalTest, LookbackWindowSkipsOlderEvents) {
  Journal journal(nullptr, 1);
  journal.RecordAt(Millis(1), JournalEventKind::kCommitAdvance, 0, -1, 1, 1);
  journal.RecordAt(Millis(50), JournalEventKind::kCommitAdvance, 0, -1, 2,
                   1);
  journal.RecordAt(Millis(99), JournalEventKind::kCommitAdvance, 0, -1, 3,
                   1);

  const std::string path = TempPath("journal_window.jsonl");
  // Window = [cutoff - 60ms, cutoff] -> the 1ms event falls out.
  ASSERT_TRUE(journal.WriteJsonl(path, Millis(100), Millis(60)).ok());
  const std::string body = Slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(body.find("\"events_emitted\":2"), std::string::npos);
  EXPECT_EQ(body.find("\"a\":1,"), std::string::npos);
  EXPECT_NE(body.find("\"a\":2,"), std::string::npos);
  EXPECT_NE(body.find("\"a\":3,"), std::string::npos);
}

TEST(JournalTest, EmptyJournalDumpIsJustTheMetaLine) {
  Journal journal(nullptr, 3);
  const std::string path = TempPath("journal_empty.jsonl");
  ASSERT_TRUE(journal.WriteJsonl(path, 0, 0).ok());
  const std::string body = Slurp(path);
  std::remove(path.c_str());
  std::istringstream lines(body);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 1);
  EXPECT_NE(body.find("\"events_emitted\":0"), std::string::npos);
}

TEST(JournalTest, IdenticalRecordingsDumpByteIdentically) {
  const auto record_all = [](Journal* j) {
    j->RecordAt(Micros(3), JournalEventKind::kLeaderElected, 0, -1, 1);
    j->RecordAt(Micros(4), JournalEventKind::kRpcSend, 0, 1,
                static_cast<int64_t>(JournalRpc::kAppendEntries), 4096);
    j->RecordAt(Micros(5), JournalEventKind::kRpcRecv, 1, 0,
                static_cast<int64_t>(JournalRpc::kAppendEntries), 4096);
    j->RecordAt(Micros(6), JournalEventKind::kViolation, -1, -1, 1);
  };
  Journal a(nullptr, 2);
  Journal b(nullptr, 2);
  record_all(&a);
  record_all(&b);

  const std::string pa = TempPath("journal_a.jsonl");
  const std::string pb = TempPath("journal_b.jsonl");
  ASSERT_TRUE(a.WriteJsonl(pa, Micros(10), Micros(10)).ok());
  ASSERT_TRUE(b.WriteJsonl(pb, Micros(10), Micros(10)).ok());
  EXPECT_EQ(Slurp(pa), Slurp(pb));

  const auto namer = [](int32_t id) {
    return id < 0 ? std::string("cluster") : "n" + std::to_string(id);
  };
  ASSERT_TRUE(a.WriteTimeline(pa, Micros(10), Micros(10), namer).ok());
  ASSERT_TRUE(b.WriteTimeline(pb, Micros(10), Micros(10), namer).ok());
  EXPECT_EQ(Slurp(pa), Slurp(pb));
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(JournalTest, TimelineFormatsDecodedEventLines) {
  JournalEvent e;
  e.at = Millis(2);
  e.kind = JournalEventKind::kRpcSend;
  e.node = 0;
  e.peer = 2;
  e.a = static_cast<int64_t>(JournalRpc::kRequestVote);
  e.b = 128;
  const std::string line = Journal::FormatEvent(e, nullptr);
  EXPECT_NE(line.find("node 0"), std::string::npos);
  EXPECT_NE(line.find("send request_vote -> node 2"), std::string::npos);
  EXPECT_NE(line.find("128 B"), std::string::npos);

  JournalEvent v;
  v.kind = JournalEventKind::kViolation;
  v.node = -1;
  v.a = 1;
  EXPECT_NE(Journal::FormatEvent(v, nullptr).find("INVARIANT VIOLATION"),
            std::string::npos);
}

TEST(JournalTest, UnwritablePathReturnsIoError) {
  Journal journal(nullptr, 1);
  EXPECT_FALSE(
      journal.WriteJsonl("/nonexistent-dir/never/j.jsonl", 0, 0).ok());
  EXPECT_FALSE(
      journal.WriteTimeline("/nonexistent-dir/never/t.txt", 0, 0, nullptr)
          .ok());
}

}  // namespace
}  // namespace nbraft::obs
