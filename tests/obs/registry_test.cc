#include "obs/registry.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace nbraft::obs {
namespace {

TEST(RegistryTest, CounterCreateOnDemandWithStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("appends");
  a->Increment();
  a->Increment(4);
  // Second lookup returns the same object.
  EXPECT_EQ(registry.GetCounter("appends"), a);
  // Creating more counters must not invalidate the first pointer.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i))->Increment();
  }
  EXPECT_EQ(a->value(), 5);

  a->Set(7);
  EXPECT_EQ(a->value(), 7);
}

TEST(RegistryTest, GaugeAndSortedSnapshots) {
  Registry registry;
  registry.GetGauge("zeta")->Set(2.5);
  registry.GetGauge("alpha")->Set(-1.0);
  registry.GetCounter("b")->Increment(2);
  registry.GetCounter("a")->Increment(1);

  const auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[0].second, 1);
  EXPECT_EQ(counters[1].first, "b");

  const auto gauges = registry.GaugeValues();
  ASSERT_EQ(gauges.size(), 2u);
  EXPECT_EQ(gauges[0].first, "alpha");
  EXPECT_DOUBLE_EQ(gauges[0].second, -1.0);
  EXPECT_EQ(gauges[1].first, "zeta");
}

TEST(SamplerTest, SamplesSourcesAtFixedVirtualInterval) {
  sim::Simulator sim(1);
  Registry registry;
  int64_t live = 0;
  registry.AddSource("live", [&live]() { return static_cast<double>(live); });

  Sampler sampler(&sim, &registry, Millis(10));
  sampler.Start();
  // Bump the source between ticks so samples see distinct values.
  for (int i = 1; i <= 4; ++i) {
    sim.After(Millis(10 * i - 5), [&live]() { ++live; });
  }
  sim.RunUntil(Millis(35));
  sampler.Stop();
  sim.RunUntil(Millis(100));  // No ticks after Stop().

  ASSERT_EQ(sampler.series_names().size(), 1u);
  EXPECT_EQ(sampler.series_names()[0], "live");
  const auto& samples = sampler.samples();
  // Start() samples immediately at t=0, then t=10,20,30ms.
  ASSERT_EQ(samples.size(), 4u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].at, Millis(10) * static_cast<int64_t>(i));
    ASSERT_EQ(samples[i].values.size(), 1u);
    EXPECT_DOUBLE_EQ(samples[i].values[0], static_cast<double>(i));
  }
}

TEST(SamplerTest, DeterministicAcrossIdenticalRuns) {
  auto run = []() {
    sim::Simulator sim(7);
    Registry registry;
    int64_t x = 0;
    registry.AddSource("x", [&x]() { return static_cast<double>(x); });
    registry.AddSource("2x", [&x]() { return static_cast<double>(2 * x); });
    Sampler sampler(&sim, &registry, Micros(500));
    sampler.Start();
    for (int i = 0; i < 20; ++i) {
      sim.After(Micros(130 * (i + 1)), [&x]() { x += 3; });
    }
    sim.RunUntil(Millis(5));
    return sampler.samples();
  };

  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    ASSERT_EQ(a[i].values.size(), b[i].values.size());
    for (size_t j = 0; j < a[i].values.size(); ++j) {
      EXPECT_DOUBLE_EQ(a[i].values[j], b[i].values[j]);
    }
  }
}

TEST(SamplerTest, SourceListFrozenAtStart) {
  sim::Simulator sim(1);
  Registry registry;
  registry.AddSource("early", []() { return 1.0; });
  Sampler sampler(&sim, &registry, Millis(1));
  sampler.Start();
  // A source registered after Start() must not shift the sample layout.
  registry.AddSource("late", []() { return 2.0; });
  sim.RunUntil(Millis(3));

  EXPECT_EQ(sampler.series_names().size(), 1u);
  for (const auto& sample : sampler.samples()) {
    EXPECT_EQ(sample.values.size(), 1u);
  }
}

}  // namespace
}  // namespace nbraft::obs
