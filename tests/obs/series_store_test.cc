// The compressed telemetry store: every sampled series survives the
// Gorilla encode/decode round trip bit-exactly (the system monitors itself
// with its own storage format), chunks seal on the configured boundary,
// and the Sampler mirror records exactly the raw sample stream.

#include "obs/series_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "obs/registry.h"
#include "sim/simulator.h"

namespace nbraft::obs {
namespace {

uint64_t Bits(double v) {
  uint64_t out = 0;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

TEST(SeriesStoreTest, RoundTripIsBitExact) {
  SeriesStore store(/*chunk_points=*/32);
  const size_t s = store.AddSeries("raft.window_occupancy");

  // Awkward doubles on an irregular (but monotone) virtual-time grid:
  // zeros and negative zero, denormals, huge magnitudes, long runs of the
  // same value (the XOR encoder's best case) and sign flips (its worst).
  std::vector<tsdb::Point> expected;
  SimTime at = 0;
  double value = 0.0;
  for (int i = 0; i < 200; ++i) {
    at += (i % 7 == 0) ? Micros(13) : Millis(1);
    switch (i % 8) {
      case 0: value = 0.0; break;
      case 1: value = -0.0; break;
      case 2: value = 5e-324; break;  // Smallest denormal.
      case 3: value = 1.7e308; break;
      case 4: value = static_cast<double>(i); break;
      case 5: value = static_cast<double>(i); break;  // Repeat.
      case 6: value = -3.14159265358979 * i; break;
      default: value = 1.0 / (i + 1); break;
    }
    store.Append(s, at, value);
    expected.push_back({at, value});
  }

  ASSERT_EQ(store.point_count(s), expected.size());
  const auto decoded = store.Decode(s);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*decoded)[i].timestamp, expected[i].timestamp) << "at " << i;
    EXPECT_EQ(Bits((*decoded)[i].value), Bits(expected[i].value))
        << "value bits diverge at " << i;
  }
}

TEST(SeriesStoreTest, SealsOnChunkBoundaryAndDecodesAcrossChunksAndTail) {
  SeriesStore store(/*chunk_points=*/4);
  const size_t s = store.AddSeries("sim.cpu_queue_depth");
  for (int i = 0; i < 10; ++i) {
    store.Append(s, Millis(i), static_cast<double>(i * i));
  }
  // 10 points at 4/chunk: 2 sealed chunks + a 2-point open tail.
  EXPECT_EQ(store.chunks(s).size(), 2u);
  EXPECT_EQ(store.point_count(s), 10u);
  EXPECT_EQ(store.raw_bytes(s), 160u);
  EXPECT_GT(store.encoded_bytes(s), 0u);

  const auto decoded = store.Decode(s);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*decoded)[static_cast<size_t>(i)].timestamp, Millis(i));
    EXPECT_EQ((*decoded)[static_cast<size_t>(i)].value,
              static_cast<double>(i * i));
  }

  store.SealAll();
  EXPECT_EQ(store.chunks(s).size(), 3u);
  const auto resealed = store.Decode(s);
  ASSERT_TRUE(resealed.ok());
  EXPECT_EQ(resealed->size(), 10u);
}

TEST(SeriesStoreTest, SeriesAreIndependent) {
  SeriesStore store(/*chunk_points=*/8);
  const size_t a = store.AddSeries("raft.apply_lag");
  const size_t b = store.AddSeries("net.bytes_sent");
  EXPECT_EQ(store.name(a), "raft.apply_lag");
  EXPECT_EQ(store.name(b), "net.bytes_sent");
  for (int i = 0; i < 20; ++i) store.Append(a, i, 1.0);
  store.Append(b, 5, 42.0);

  EXPECT_EQ(store.point_count(a), 20u);
  EXPECT_EQ(store.point_count(b), 1u);
  const auto db = store.Decode(b);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 1u);
  EXPECT_EQ((*db)[0].value, 42.0);
}

TEST(SeriesStoreTest, EmptySeriesDecodesToNothing) {
  SeriesStore store;
  const size_t s = store.AddSeries("raft.replication_lag");
  const auto decoded = store.Decode(s);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
  EXPECT_EQ(store.encoded_bytes(s), 0u);
}

TEST(SamplerMirrorTest, StoreReproducesRawSampleStreamBitExactly) {
  sim::Simulator sim(1);
  Registry registry;
  int tick = 0;
  registry.AddSource("sim.cpu_queue_depth",
                     [&tick]() { return static_cast<double>(tick++); });
  registry.AddSource("raft.window_occupancy",
                     [&tick]() { return 0.37 * tick; });

  Sampler sampler(&sim, &registry, Millis(1));
  SeriesStore store(/*chunk_points=*/4);  // Forces seals mid-run.
  sampler.set_series_store(&store);
  sampler.Start();
  sim.RunUntil(Millis(20));
  sampler.Stop();

  ASSERT_EQ(store.series_count(), 2u);
  EXPECT_EQ(store.name(0), "sim.cpu_queue_depth");
  EXPECT_EQ(store.name(1), "raft.window_occupancy");

  const auto& samples = sampler.samples();
  ASSERT_GT(samples.size(), 4u);
  for (size_t series = 0; series < 2; ++series) {
    const auto decoded = store.Decode(series);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), samples.size());
    for (size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ((*decoded)[i].timestamp, samples[i].at);
      EXPECT_EQ(Bits((*decoded)[i].value), Bits(samples[i].values[series]))
          << store.name(series) << " sample " << i;
    }
  }
}

}  // namespace
}  // namespace nbraft::obs
