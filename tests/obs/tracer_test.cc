#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "metrics/breakdown.h"
#include "sim/simulator.h"

namespace nbraft::obs {
namespace {

using metrics::Phase;

TEST(TracerTest, RecordsSpansInOrder) {
  Tracer tracer(nullptr);
  tracer.RecordSpan(Phase::kParse, 0, 1, 10, 7, 100, 150);
  tracer.RecordSpan(Phase::kIndex, 0, 1, 10, 7, 150, 180);
  tracer.RecordSpan(Phase::kQueue, 0, 1, 10, 7, 180, 400);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].phase, Phase::kParse);
  EXPECT_EQ(spans[1].phase, Phase::kIndex);
  EXPECT_EQ(spans[2].phase, Phase::kQueue);
  EXPECT_EQ(spans[0].start, 100);
  EXPECT_EQ(spans[0].end, 150);
  EXPECT_EQ(spans[0].duration(), 50);
  EXPECT_EQ(spans[0].node, 0);
  EXPECT_EQ(spans[0].term, 1);
  EXPECT_EQ(spans[0].index, 10);
  EXPECT_EQ(spans[0].request_id, 7u);
  EXPECT_EQ(tracer.spans_recorded(), 3u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
}

TEST(TracerTest, RingEvictsOldestAndKeepsBreakdownExact) {
  Tracer::Options opts;
  opts.span_capacity = 4;
  opts.instant_capacity = 4;
  Tracer tracer(nullptr, opts);

  for (int i = 0; i < 6; ++i) {
    tracer.RecordSpan(Phase::kApply, 0, 1, i, 0, i * 10, i * 10 + 5);
  }

  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.spans_recorded(), 6u);
  EXPECT_EQ(tracer.spans_dropped(), 2u);

  // The two oldest spans (index 0, 1) were overwritten; retained events
  // still come out oldest-first.
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<size_t>(i)].index, i + 2);
  }

  // The running breakdown covers all six spans, not just the retained four.
  EXPECT_EQ(tracer.SpanBreakdown().total(Phase::kApply), 6 * 5);
}

TEST(TracerTest, InstantRingEvictsOldest) {
  Tracer::Options opts;
  opts.span_capacity = 2;
  opts.instant_capacity = 2;
  Tracer tracer(nullptr, opts);

  tracer.RecordInstantAt("a", 0, 1);
  tracer.RecordInstantAt("b", 0, 2);
  tracer.RecordInstantAt("c", 0, 3, 42, 43);

  EXPECT_EQ(tracer.instant_count(), 2u);
  EXPECT_EQ(tracer.instants_recorded(), 3u);
  EXPECT_EQ(tracer.instants_dropped(), 1u);
  const auto instants = tracer.instants();
  ASSERT_EQ(instants.size(), 2u);
  EXPECT_STREQ(instants[0].name, "b");
  EXPECT_STREQ(instants[1].name, "c");
  EXPECT_EQ(instants[1].arg0, 42);
  EXPECT_EQ(instants[1].arg1, 43);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(nullptr);
  tracer.set_enabled(false);
  tracer.RecordSpan(Phase::kParse, 0, 1, 1, 1, 0, 10);
  tracer.RecordInstantAt("x", 0, 5);

  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.instant_count(), 0u);
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_EQ(tracer.instants_recorded(), 0u);
  EXPECT_EQ(tracer.SpanBreakdown().GrandTotal(), 0);

  tracer.set_enabled(true);
  tracer.RecordSpan(Phase::kParse, 0, 1, 1, 1, 0, 10);
  EXPECT_EQ(tracer.span_count(), 1u);
}

TEST(TracerTest, InstantUsesSimulatorClock) {
  sim::Simulator sim(1);
  Tracer tracer(&sim);
  sim.After(Millis(5), [&]() { tracer.RecordInstant("tick", 3); });
  sim.RunUntil(Millis(10));

  const auto instants = tracer.instants();
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].at, Millis(5));
  EXPECT_EQ(instants[0].node, 3);
}

TEST(TracerTest, ClearResetsEverything) {
  Tracer tracer(nullptr);
  tracer.RecordSpan(Phase::kAck, 1, 2, 3, 4, 0, 100);
  tracer.RecordInstantAt("x", 1, 50);
  tracer.Clear();

  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.instant_count(), 0u);
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  EXPECT_EQ(tracer.SpanBreakdown().GrandTotal(), 0);
}

TEST(TracerTest, NegativeDurationClampedInBreakdown) {
  // Breakdown::Add clamps negatives; the span itself keeps raw endpoints.
  Tracer tracer(nullptr);
  tracer.RecordSpan(Phase::kAck, 0, 1, 1, 0, 100, 90);
  EXPECT_EQ(tracer.SpanBreakdown().total(Phase::kAck), 0);
  EXPECT_EQ(tracer.spans()[0].duration(), -10);
}

}  // namespace
}  // namespace nbraft::obs
