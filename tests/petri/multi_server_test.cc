// Multi-server transition semantics: k servers serve up to k enabled
// tokens concurrently (the network and dispatcher stages of the Fig. 3
// model), while a single-server transition serializes (the follower's log
// lock).

#include <gtest/gtest.h>

#include "petri/petri_net.h"

namespace nbraft::petri {
namespace {

TEST(MultiServerTest, SingleServerSerializesService) {
  PetriNet net(1);
  const PlaceId in = net.AddPlace("in", 4);
  const PlaceId out = net.AddPlace("out");
  net.AddTransition("serve", {{in, 1}}, {{out, 1}},
                    PetriNet::FixedDelay(Millis(10)));
  net.Run(Millis(25));
  // 10ms each, one at a time: two completions by t=25ms.
  EXPECT_EQ(net.Tokens(out), 2);
}

TEST(MultiServerTest, FourServersServeFourAtOnce) {
  PetriNet net(1);
  const PlaceId in = net.AddPlace("in", 4);
  const PlaceId out = net.AddPlace("out");
  const TransitionId t = net.AddTransition(
      "serve", {{in, 1}}, {{out, 1}}, PetriNet::FixedDelay(Millis(10)));
  net.SetServers(t, 4);
  net.Run(Millis(15));
  EXPECT_EQ(net.Tokens(out), 4) << "all four served in parallel";
}

TEST(MultiServerTest, ServersBoundConcurrencyNotThroughput) {
  PetriNet net(1);
  const PlaceId in = net.AddPlace("in", 8);
  const PlaceId out = net.AddPlace("out");
  const TransitionId t = net.AddTransition(
      "serve", {{in, 1}}, {{out, 1}}, PetriNet::FixedDelay(Millis(10)));
  net.SetServers(t, 2);
  net.Run(Millis(45));
  // 2 at a time, 10ms per batch: 8 done after 40ms.
  EXPECT_EQ(net.Tokens(out), 8);
}

TEST(MultiServerTest, InfiniteServersDrainEverythingInOneServiceTime) {
  PetriNet net(1);
  const PlaceId in = net.AddPlace("in", 100);
  const PlaceId out = net.AddPlace("out");
  const TransitionId t = net.AddTransition(
      "serve", {{in, 1}}, {{out, 1}}, PetriNet::FixedDelay(Millis(10)));
  net.SetServers(t, PetriNet::kInfiniteServers);
  net.Run(Millis(12));
  EXPECT_EQ(net.Tokens(out), 100);
}

TEST(MultiServerTest, CompetingTransitionsShareTokensSafely) {
  // Two multi-server transitions racing for the same tokens: conservation
  // must hold even when pending firings outnumber the tokens left.
  PetriNet net(3);
  const PlaceId in = net.AddPlace("in", 10);
  const PlaceId a = net.AddPlace("a");
  const PlaceId b = net.AddPlace("b");
  const TransitionId ta = net.AddTransition(
      "ta", {{in, 1}}, {{a, 1}}, PetriNet::ExponentialDelay(Millis(1)));
  const TransitionId tb = net.AddTransition(
      "tb", {{in, 1}}, {{b, 1}}, PetriNet::ExponentialDelay(Millis(1)));
  net.SetServers(ta, 8);
  net.SetServers(tb, 8);
  net.Run(Seconds(1));
  EXPECT_EQ(net.Tokens(in), 0);
  EXPECT_EQ(net.Tokens(a) + net.Tokens(b), 10);
  EXPECT_EQ(net.Firings(ta) + net.Firings(tb), 10u);
}

TEST(MultiServerTest, ServerTokenPatternStillWorks) {
  // Limiting concurrency with explicit resource tokens (dispatcher idle
  // tokens in the replication model) composes with multi-server settings.
  PetriNet net(1);
  const PlaceId in = net.AddPlace("in", 6);
  const PlaceId workers = net.AddPlace("workers", 2);
  const PlaceId out = net.AddPlace("out");
  const TransitionId t = net.AddTransition(
      "serve", {{in, 1}, {workers, 1}}, {{out, 1}, {workers, 1}},
      PetriNet::FixedDelay(Millis(10)));
  net.SetServers(t, PetriNet::kInfiniteServers);
  net.Run(Millis(35));
  // Two worker tokens bound concurrency to 2: 6 jobs need 30 ms.
  EXPECT_EQ(net.Tokens(out), 6);
  EXPECT_EQ(net.Tokens(workers), 2);
}

}  // namespace
}  // namespace nbraft::petri
