#include "petri/petri_net.h"

#include <gtest/gtest.h>

namespace nbraft::petri {
namespace {

TEST(PetriNetTest, InitialMarking) {
  PetriNet net(1);
  const PlaceId p = net.AddPlace("p", 3);
  EXPECT_EQ(net.Tokens(p), 3);
  EXPECT_EQ(net.PlaceName(p), "p");
  EXPECT_EQ(net.num_places(), 1);
}

TEST(PetriNetTest, TimedTransitionMovesToken) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b");
  const TransitionId t = net.AddTransition(
      "move", {{a, 1}}, {{b, 1}}, PetriNet::FixedDelay(Millis(5)));
  EXPECT_TRUE(net.IsEnabled(t));
  net.Run(Seconds(1));
  EXPECT_EQ(net.Tokens(a), 0);
  EXPECT_EQ(net.Tokens(b), 1);
  EXPECT_EQ(net.Firings(t), 1u);
  EXPECT_FALSE(net.IsEnabled(t));
}

TEST(PetriNetTest, DisabledWithoutTokens) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 0);
  const PlaceId b = net.AddPlace("b");
  const TransitionId t = net.AddTransition(
      "move", {{a, 1}}, {{b, 1}}, PetriNet::FixedDelay(Millis(1)));
  net.Run(Seconds(1));
  EXPECT_EQ(net.Firings(t), 0u);
}

TEST(PetriNetTest, ArcWeights) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 3);
  const PlaceId b = net.AddPlace("b");
  const TransitionId t = net.AddTransition(
      "pair", {{a, 2}}, {{b, 1}}, PetriNet::FixedDelay(Millis(1)));
  net.Run(Seconds(1));
  // Only one firing possible: 3 tokens allow one consumption of 2.
  EXPECT_EQ(net.Firings(t), 1u);
  EXPECT_EQ(net.Tokens(a), 1);
  EXPECT_EQ(net.Tokens(b), 1);
}

TEST(PetriNetTest, GuardBlocksFiring) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b");
  bool open = false;
  const TransitionId t = net.AddTransition(
      "gated", {{a, 1}}, {{b, 1}}, PetriNet::FixedDelay(Millis(1)), 1.0,
      [&open] { return open; });
  net.Run(Millis(10));
  EXPECT_EQ(net.Firings(t), 0u);
  open = true;
  net.Run(Millis(20));
  EXPECT_EQ(net.Firings(t), 1u);
}

TEST(PetriNetTest, TokenConservationInCycle) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 5);
  const PlaceId b = net.AddPlace("b");
  net.AddTransition("ab", {{a, 1}}, {{b, 1}},
                    PetriNet::FixedDelay(Millis(1)));
  net.AddTransition("ba", {{b, 1}}, {{a, 1}},
                    PetriNet::FixedDelay(Millis(1)));
  net.Run(Seconds(1));
  EXPECT_EQ(net.Tokens(a) + net.Tokens(b), 5);
}

TEST(PetriNetTest, ImmediateTransitionFiresBeforeTimed) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId fast = net.AddPlace("fast");
  const PlaceId slow = net.AddPlace("slow");
  net.AddTransition("imm", {{a, 1}}, {{fast, 1}}, nullptr);
  net.AddTransition("timed", {{a, 1}}, {{slow, 1}},
                    PetriNet::FixedDelay(Millis(1)));
  net.Run(Seconds(1));
  EXPECT_EQ(net.Tokens(fast), 1);
  EXPECT_EQ(net.Tokens(slow), 0);
}

TEST(PetriNetTest, WeightedImmediateBranchingApproximatesProbability) {
  PetriNet net(7);
  const PlaceId src = net.AddPlace("src", 10000);
  const PlaceId left = net.AddPlace("left");
  const PlaceId right = net.AddPlace("right");
  net.AddTransition("l", {{src, 1}}, {{left, 1}}, nullptr, 0.3);
  net.AddTransition("r", {{src, 1}}, {{right, 1}}, nullptr, 0.7);
  net.Run(Seconds(1));
  EXPECT_EQ(net.Tokens(left) + net.Tokens(right), 10000);
  EXPECT_NEAR(net.Tokens(left), 3000, 200);
}

TEST(PetriNetTest, ProducerConsumerThroughputMatchesBottleneck) {
  PetriNet net(3);
  const PlaceId idle = net.AddPlace("idle", 1);
  const PlaceId queue = net.AddPlace("queue");
  const PlaceId done = net.AddPlace("done");
  // Producer: 1 item per 1ms (closed loop via idle token).
  net.AddTransition("produce", {{idle, 1}}, {{queue, 1}, {idle, 1}},
                    PetriNet::FixedDelay(Millis(1)));
  // Consumer: 2ms service — the bottleneck.
  net.AddTransition("consume", {{queue, 1}}, {{done, 1}},
                    PetriNet::FixedDelay(Millis(2)));
  net.Run(Seconds(1));
  EXPECT_NEAR(net.Tokens(done), 500, 5);
  // Queue grows at ~500 items/s.
  EXPECT_NEAR(net.Tokens(queue), 500, 10);
}

TEST(PetriNetTest, TokenTimeIntegralMatchesConstantMarking) {
  PetriNet net(1);
  const PlaceId p = net.AddPlace("p", 2);
  net.Run(Seconds(1));
  EXPECT_DOUBLE_EQ(net.TokenTime(p), 2.0 * kSecond);
}

TEST(PetriNetTest, TokenTimeTracksTransit) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b");
  net.AddTransition("move", {{a, 1}}, {{b, 1}},
                    PetriNet::FixedDelay(Millis(250)));
  net.Run(Seconds(1));
  EXPECT_NEAR(net.TokenTime(a), 0.25 * kSecond, 1.0);
  EXPECT_NEAR(net.TokenTime(b), 0.75 * kSecond, 1.0);
}

TEST(PetriNetTest, ExponentialDelayHasRequestedMean) {
  PetriNet net(11);
  const PlaceId idle = net.AddPlace("idle", 1);
  const PlaceId done = net.AddPlace("done");
  net.AddTransition("tick", {{idle, 1}}, {{idle, 1}, {done, 1}},
                    PetriNet::ExponentialDelay(Millis(2)));
  net.Run(Seconds(10));
  EXPECT_NEAR(net.Tokens(done), 5000, 400);
}

TEST(PetriNetTest, QuiescenceStopsEarly) {
  PetriNet net(1);
  const PlaceId a = net.AddPlace("a", 1);
  const PlaceId b = net.AddPlace("b");
  net.AddTransition("move", {{a, 1}}, {{b, 1}},
                    PetriNet::FixedDelay(Millis(1)));
  net.Run(Seconds(100));
  EXPECT_EQ(net.Now(), Seconds(100));  // Time advances to the horizon.
  EXPECT_EQ(net.Tokens(b), 1);
}

}  // namespace
}  // namespace nbraft::petri
