#include "petri/replication_model.h"

#include <gtest/gtest.h>

namespace nbraft::petri {
namespace {

ReplicationModel::Params BaseParams() {
  ReplicationModel::Params p;
  p.num_clients = 32;
  p.num_dispatchers = 32;
  p.out_of_order_probability = 0.35;
  p.seed = 5;
  return p;
}

TEST(ReplicationModelTest, RaftModelProcessesRequests) {
  ReplicationModel model(BaseParams());
  model.Run(Seconds(2));
  EXPECT_GT(model.CompletedRequests(), 1000u);
  EXPECT_EQ(model.WeakAccepts(), 0u);
  EXPECT_GT(model.WaitLoopTurns(), 0u) << "the blue loop must be exercised";
}

TEST(ReplicationModelTest, NbRaftIssuesWeakAccepts) {
  ReplicationModel::Params p = BaseParams();
  p.window_size = 10000;
  ReplicationModel model(p);
  model.Run(Seconds(2));
  EXPECT_GT(model.CompletedRequests(), 1000u);
  EXPECT_GT(model.WeakAccepts(), 100u);
  EXPECT_EQ(model.WaitLoopTurns(), 0u) << "NB-Raft removes the blue loop";
}

TEST(ReplicationModelTest, NbRaftOutperformsRaft) {
  ReplicationModel raft(BaseParams());
  raft.Run(Seconds(2));

  ReplicationModel::Params p = BaseParams();
  p.window_size = 10000;
  ReplicationModel nb(p);
  nb.Run(Seconds(2));

  EXPECT_GT(nb.ThroughputOps(), raft.ThroughputOps() * 1.05)
      << "the early return must increase throughput";
}

TEST(ReplicationModelTest, ZeroDisorderEqualizesProtocols) {
  ReplicationModel::Params p = BaseParams();
  p.out_of_order_probability = 0.0;
  ReplicationModel raft(p);
  raft.Run(Seconds(2));
  p.window_size = 10000;
  ReplicationModel nb(p);
  nb.Run(Seconds(2));
  // Without disorder there is nothing to unblock.
  EXPECT_EQ(nb.WeakAccepts(), 0u);
  EXPECT_NEAR(static_cast<double>(nb.CompletedRequests()),
              static_cast<double>(raft.CompletedRequests()),
              static_cast<double>(raft.CompletedRequests()) * 0.1);
}

TEST(ReplicationModelTest, MoreDisorderMoreWaiting) {
  ReplicationModel::Params low = BaseParams();
  low.out_of_order_probability = 0.1;
  ReplicationModel a(low);
  a.Run(Seconds(2));

  ReplicationModel::Params high = BaseParams();
  high.out_of_order_probability = 0.6;
  ReplicationModel b(high);
  b.Run(Seconds(2));

  EXPECT_GT(b.MeanWaiting(), a.MeanWaiting());
  EXPECT_LT(b.ThroughputOps(), a.ThroughputOps());
}

TEST(ReplicationModelTest, BreakdownCoversAllPhasesAndWaitIsVisible) {
  ReplicationModel model(BaseParams());
  model.Run(Seconds(2));
  const metrics::Breakdown bd = model.PhaseBreakdown();
  EXPECT_GT(bd.GrandTotal(), 0);
  // The waiting phase must register (the paper's identified bottleneck).
  EXPECT_GT(bd.Proportion(metrics::Phase::kWaitFollower), 0.01);
  // Network transfer phases dominate in the model's parameterization.
  EXPECT_GT(bd.Proportion(metrics::Phase::kTransClientLeader), 0.0);
  EXPECT_GT(bd.Proportion(metrics::Phase::kTransLeaderFollower), 0.0);
}

TEST(ReplicationModelTest, ClientTokensConserved) {
  ReplicationModel::Params p = BaseParams();
  p.window_size = 10000;
  ReplicationModel model(p);
  model.Run(Seconds(1));
  // ACK tokens in flight + idle can never exceed the client count by the
  // construction of the net; the throughput is finite and positive.
  EXPECT_LE(model.net()->Tokens(0), p.num_clients);
  EXPECT_GT(model.ThroughputOps(), 0.0);
}

TEST(ReplicationModelTest, DispatcherLimitThrottles) {
  ReplicationModel::Params few = BaseParams();
  few.num_dispatchers = 1;
  ReplicationModel a(few);
  a.Run(Seconds(1));

  ReplicationModel::Params many = BaseParams();
  many.num_dispatchers = 64;
  ReplicationModel b(many);
  b.Run(Seconds(1));

  EXPECT_GT(b.CompletedRequests(), a.CompletedRequests());
}

TEST(ReplicationModelTest, DeterministicAcrossRuns) {
  ReplicationModel a(BaseParams());
  a.Run(Seconds(1));
  ReplicationModel b(BaseParams());
  b.Run(Seconds(1));
  EXPECT_EQ(a.CompletedRequests(), b.CompletedRequests());
  EXPECT_EQ(a.WaitLoopTurns(), b.WaitLoopTurns());
}

}  // namespace
}  // namespace nbraft::petri
