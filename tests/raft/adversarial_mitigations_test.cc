// The adversarial-resilience mitigations in isolation: PreVote canvasses
// never touch persistent term/vote state, a leader lease rejects (pre-)
// votes without adopting the candidate's term, CheckQuorum makes a
// quorum-deaf leader abdicate in its own term, and the election-timer
// jitter is drawn per arming (the split-vote / election-storm defence).

#include <gtest/gtest.h>

#include <vector>

#include "harness/cluster.h"
#include "raft/raft_node.h"
#include "sim/simulator.h"
#include "tests/raft/mock_node_context.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using raft_test::MockNodeContext;

RaftOptions MitigationOptions(bool pre_vote, bool check_quorum,
                              bool leader_lease) {
  RaftOptions options;
  options.election_timeout = Millis(150);
  options.pre_vote = pre_vote;
  options.check_quorum = check_quorum;
  options.leader_lease = leader_lease;
  return options;
}

RequestVoteRequest VoteRequest(storage::Term term, net::NodeId candidate,
                               bool pre_vote = false) {
  RequestVoteRequest req;
  req.term = term;
  req.candidate = candidate;
  req.last_log_index = 0;
  req.last_log_term = 0;
  req.pre_vote = pre_vote;
  return req;
}

// ---- PreVote ----

TEST(PreVoteTest, CanvassNeverTouchesTermOrVote) {
  // An isolated pre-voting node keeps canvassing forever without minting
  // a single term: this is exactly what defuses the disruptive server.
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(true, false, false));
  ctx.election()->ArmElectionTimer();
  sim.RunUntil(Seconds(3));

  EXPECT_EQ(ctx.core().current_term, 0);
  EXPECT_EQ(ctx.core().voted_for, net::kInvalidNode);
  EXPECT_EQ(ctx.core().role, Role::kFollower);
  EXPECT_EQ(ctx.stats().terms_started, 0u);
  EXPECT_EQ(ctx.stats().elections_started, 0u);

  // It did canvass — repeatedly, always for the same prospective term.
  const auto sent = ctx.SentOfType<RequestVoteRequest>();
  ASSERT_GE(sent.size(), 4u);  // >= 2 canvass rounds x 2 peers.
  for (const RequestVoteRequest& req : sent) {
    EXPECT_TRUE(req.pre_vote);
    EXPECT_EQ(req.term, 1);  // Prospective term: current (0) + 1.
  }
}

TEST(PreVoteTest, QuorumOfPreVotesStartsARealElection) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(true, false, false));
  ctx.election()->OnElectionTimeout();
  EXPECT_EQ(ctx.core().current_term, 0);  // Canvass in flight, no mint.
  ASSERT_EQ(ctx.SentOfType<RequestVoteRequest>().size(), 2u);

  RequestVoteResponse resp;
  resp.term = 0;
  resp.from = 2;
  resp.granted = true;
  resp.pre_vote = true;
  ctx.election()->HandleVoteResponse(resp);

  // Self + node 2 is a quorum of 3: the real election fires now.
  EXPECT_EQ(ctx.core().role, Role::kCandidate);
  EXPECT_EQ(ctx.core().current_term, 1);
  EXPECT_EQ(ctx.core().voted_for, 1);
  EXPECT_EQ(ctx.stats().terms_started, 1u);
  const auto sent = ctx.SentOfType<RequestVoteRequest>();
  ASSERT_EQ(sent.size(), 4u);
  EXPECT_FALSE(sent[2].pre_vote);
  EXPECT_EQ(sent[2].term, 1);
}

TEST(PreVoteTest, RejectionsNeverAccumulateIntoAnElection) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3, 4, 5},
                      MitigationOptions(true, false, false));
  ctx.election()->OnElectionTimeout();

  RequestVoteResponse resp;
  resp.term = 0;
  resp.from = 2;
  resp.granted = false;
  resp.pre_vote = true;
  ctx.election()->HandleVoteResponse(resp);
  resp.from = 3;
  ctx.election()->HandleVoteResponse(resp);
  resp.from = 4;
  ctx.election()->HandleVoteResponse(resp);

  EXPECT_EQ(ctx.core().role, Role::kFollower);
  EXPECT_EQ(ctx.core().current_term, 0);
  EXPECT_EQ(ctx.stats().elections_started, 0u);
}

TEST(PreVoteTest, VoterGrantsWithoutMovingItsOwnState) {
  sim::Simulator sim(7);
  MockNodeContext voter(&sim, /*id=*/1, {2, 3},
                        MitigationOptions(true, false, false));
  voter.election()->HandleRequestVote(VoteRequest(1, 2, /*pre_vote=*/true));

  auto responses = voter.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].granted);
  EXPECT_TRUE(responses[0].pre_vote);
  // The grant is non-binding: no term adoption, no voted_for move.
  EXPECT_EQ(voter.core().current_term, 0);
  EXPECT_EQ(voter.core().voted_for, net::kInvalidNode);
  EXPECT_EQ(voter.stats().prevotes_granted, 1u);

  // A canvasser with a stale log is refused (same up-to-date rule as a
  // real vote, against the prospective term).
  voter.FillLog(3, 1);
  RequestVoteRequest stale = VoteRequest(2, 3, /*pre_vote=*/true);
  stale.last_log_index = 1;
  stale.last_log_term = 1;
  voter.election()->HandleRequestVote(stale);
  responses = voter.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[1].granted);
  EXPECT_EQ(voter.stats().prevotes_rejected, 1u);
}

// ---- Leader lease ----

TEST(LeaderLeaseTest, RejectsVoteWithoutAdoptingInflatedTerm) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(false, false, true));
  // Advance off t=0 so the contact timestamp is distinguishable from the
  // "never heard a leader" sentinel.
  sim.RunUntil(Millis(1));
  ctx.election()->NoteLeaderContact(1, 2);
  ASSERT_TRUE(ctx.election()->LeaseHeld());

  // A disruptive server rejoins with a wildly inflated term. The lease
  // shields: rejected, and — the whole point — term 9 is never adopted.
  ctx.election()->HandleRequestVote(VoteRequest(9, 3));
  auto responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].granted);
  EXPECT_EQ(ctx.core().current_term, 1);
  EXPECT_EQ(ctx.core().leader, 2);

  // Pre-vote canvasses bounce off the same shield.
  ctx.election()->HandleRequestVote(VoteRequest(9, 3, /*pre_vote=*/true));
  responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[1].granted);
  EXPECT_EQ(ctx.stats().prevotes_rejected, 1u);
  EXPECT_EQ(ctx.core().current_term, 1);
}

TEST(LeaderLeaseTest, ExpiresOneElectionTimeoutAfterLastContact) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(false, false, true));
  sim.RunUntil(Millis(1));
  ctx.election()->NoteLeaderContact(1, 2);
  EXPECT_TRUE(ctx.election()->LeaseHeld());

  // Just inside the window the lease still holds...
  sim.RunUntil(Millis(1) + Millis(150) - 1);
  EXPECT_TRUE(ctx.election()->LeaseHeld());
  // ...and exactly at election_timeout of silence it lapses, so a real
  // candidacy from a live peer is electable again.
  sim.RunUntil(Millis(1) + Millis(150));
  EXPECT_FALSE(ctx.election()->LeaseHeld());
}

TEST(LeaderLeaseTest, DisabledOptionLeavesVotingUntouched) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(false, false, false));
  sim.RunUntil(Millis(1));
  ctx.election()->NoteLeaderContact(1, 2);

  // Without the option the same inflated candidacy is granted and the
  // term adopted — the unmitigated (fingerprint-pinned) behavior.
  ctx.election()->HandleRequestVote(VoteRequest(9, 3));
  auto responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].granted);
  EXPECT_EQ(ctx.core().current_term, 9);
}

// ---- Vote withholding (the chaos adversary hook) ----

TEST(VoteWithholderTest, RefusesVotesAndPreVotesButKeepsTermBookkeeping) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(true, false, false));
  ctx.election()->set_withhold_votes(true);

  ctx.election()->HandleRequestVote(VoteRequest(2, 3, /*pre_vote=*/true));
  auto responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].granted);
  EXPECT_EQ(ctx.stats().prevotes_rejected, 1u);

  ctx.election()->HandleRequestVote(VoteRequest(5, 2));
  responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[1].granted);
  // Unhelpful, not byzantine: the higher term was still adopted.
  EXPECT_EQ(ctx.core().current_term, 5);
  EXPECT_EQ(ctx.core().voted_for, net::kInvalidNode);

  ctx.election()->set_withhold_votes(false);
  ctx.election()->HandleRequestVote(VoteRequest(5, 2));
  responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[2].granted);
}

// ---- CheckQuorum ----

TEST(CheckQuorumTest, DeafLeaderAbdicatesInItsOwnTerm) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(false, true, false));
  // Win a real election so BecomeLeader arms the check-quorum timer.
  ctx.election()->StartElection();
  RequestVoteResponse granted;
  granted.term = ctx.core().current_term;
  granted.from = 2;
  granted.granted = true;
  ctx.election()->HandleVoteResponse(granted);
  ASSERT_EQ(ctx.core().role, Role::kLeader);
  const storage::Term led_term = ctx.core().current_term;

  // No AppendEntries response ever arrives: after one election_timeout
  // the leader concludes it cannot commit and steps down — same term, so
  // this is an abdication, never a deposition. (Check just past the probe:
  // as a follower it will legitimately seek election again later.)
  sim.RunUntil(Millis(200));
  EXPECT_EQ(ctx.core().role, Role::kFollower);
  EXPECT_EQ(ctx.core().current_term, led_term);
  EXPECT_EQ(ctx.stats().checkquorum_stepdowns, 1u);
  EXPECT_EQ(ctx.stats().leader_depositions, 0u);
}

TEST(CheckQuorumTest, HealthyClusterLeaderNeverAbdicates) {
  harness::ClusterConfig config = raft_test::SmallConfig();
  config.check_quorum = true;
  config.workload.series_count = 10;
  harness::Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  cluster.StartClients();
  cluster.RunFor(Seconds(3));

  uint64_t stepdowns = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    stepdowns += cluster.node(i)->stats().checkquorum_stepdowns;
  }
  EXPECT_EQ(stepdowns, 0u) << "healthy leader hears its quorum";
  EXPECT_NE(cluster.leader(), nullptr);
}

TEST(CheckQuorumTest, IsolatedClusterLeaderStepsDownAndClusterMovesOn) {
  harness::ClusterConfig config = raft_test::SmallConfig();
  config.check_quorum = true;
  harness::Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  raft::RaftNode* old_leader = cluster.leader();
  ASSERT_NE(old_leader, nullptr);
  const net::NodeId victim = old_leader->id();

  for (int j = 0; j < cluster.num_nodes(); ++j) {
    if (j != victim) cluster.network()->SetLinkCut(victim, j, true);
  }
  cluster.RunFor(Seconds(3));

  // The isolated leader noticed the silence and abdicated instead of
  // lingering as a phantom leader accepting doomed writes.
  EXPECT_GE(old_leader->stats().checkquorum_stepdowns, 1u);
  EXPECT_NE(old_leader->role(), Role::kLeader);
  // The majority side elected a replacement.
  raft::RaftNode* new_leader = cluster.leader();
  ASSERT_NE(new_leader, nullptr);
  EXPECT_NE(new_leader->id(), victim);
}

// ---- Election-timer jitter (regression-pinned: see ArmElectionTimer) ----

TEST(ElectionJitterTest, JitterIsDrawnPerArmingNotPerNode) {
  // A lone candidate that never wins re-arms its timer after every
  // failed election. If the jitter were cached at construction the gaps
  // between consecutive elections would all be identical — the exact
  // resonance an election storm needs.
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3},
                      MitigationOptions(false, false, false));
  ctx.election()->ArmElectionTimer();

  std::vector<SimTime> starts;
  uint64_t last_seen = 0;
  for (SimTime t = Millis(1); t <= Seconds(5) && starts.size() < 8;
       t += Millis(1)) {
    sim.RunUntil(t);
    if (ctx.stats().elections_started > last_seen) {
      last_seen = ctx.stats().elections_started;
      starts.push_back(sim.Now());
    }
  }
  ASSERT_GE(starts.size(), 4u);

  bool any_gap_differs = false;
  const SimTime first_gap = starts[1] - starts[0];
  for (size_t i = 2; i < starts.size(); ++i) {
    if (starts[i] - starts[i - 1] != first_gap) any_gap_differs = true;
    // Every gap still respects the [timeout, 2*timeout) envelope.
    EXPECT_GE(starts[i] - starts[i - 1], Millis(150));
    EXPECT_LT(starts[i] - starts[i - 1], Millis(300) + Millis(1));
  }
  EXPECT_TRUE(any_gap_differs)
      << "identical inter-election gaps: jitter looks cached per node";
}

TEST(ElectionJitterTest, ThreeWaySplitVoteConverges) {
  // Three replicas starting cold race their first election; repeated
  // split votes only terminate because every retry draws fresh jitter.
  // A batch of seeds guards against one lucky draw hiding a regression.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    harness::ClusterConfig config =
        raft_test::SmallConfig(Protocol::kRaft, /*nodes=*/3, /*clients=*/1,
                               /*seed=*/seed);
    harness::Cluster cluster(config);
    cluster.Start();
    EXPECT_TRUE(cluster.AwaitLeader(Seconds(10)))
        << "seed " << seed << " never converged on a leader";
  }
}

}  // namespace
}  // namespace nbraft::raft
