#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using raft_test::SmallConfig;

// ---- KRaft ----

TEST(KRaftTest, AllFollowersReceiveEntriesViaRelay) {
  Cluster cluster(SmallConfig(Protocol::kKRaft, 5, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(1));

  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->commit_index(), 20);
  for (int i = 0; i < 5; ++i) {
    RaftNode* n = cluster.node(i);
    EXPECT_GE(n->log().LastIndex(), leader->commit_index() - 5)
        << "node " << i << " must receive entries through the bucket";
  }
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
}

TEST(KRaftTest, CommitsRequireQuorumAcrossRelayedNodes) {
  Cluster cluster(SmallConfig(Protocol::kKRaft, 5, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.requests_completed, 50u);
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
}

TEST(KRaftTest, TwoReplicasBehaveLikeRaft) {
  // Paper Fig. 15: with only one follower KRaft has nothing to relay.
  Cluster cluster(SmallConfig(Protocol::kKRaft, 2, 2));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  EXPECT_GT(cluster.Collect().requests_completed, 20u);
}

TEST(KRaftTest, HigherLatencyThanRaftForRelayedNodes) {
  // KRaft's relay adds a hop: completion latency should not beat Raft's.
  ClusterConfig raft_config = SmallConfig(Protocol::kRaft, 5, 8, 3);
  ClusterConfig kraft_config = SmallConfig(Protocol::kKRaft, 5, 8, 3);

  auto run = [](const ClusterConfig& config) {
    Cluster cluster(config);
    cluster.Start();
    EXPECT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Seconds(1));
    return cluster.Collect().completion_latency.Mean();
  };
  EXPECT_GE(run(kraft_config), run(raft_config) * 0.95)
      << "relay should not reduce latency";
}

// ---- VGRaft ----

TEST(VGRaftTest, CommitsWithVerificationEnabled) {
  Cluster cluster(SmallConfig(Protocol::kVGRaft, 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.requests_completed, 50u);
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
}

TEST(VGRaftTest, SlowerThanRaftDueToCrypto) {
  auto throughput = [](Protocol protocol) {
    ClusterConfig config = SmallConfig(protocol, 3, 32, 9);
    config.client_think = Micros(5);
    Cluster cluster(config);
    cluster.Start();
    EXPECT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Seconds(1));
    return cluster.Collect().requests_completed;
  };
  const uint64_t raft = throughput(Protocol::kRaft);
  const uint64_t vgraft = throughput(Protocol::kVGRaft);
  EXPECT_LT(vgraft, raft) << "hash+sign overhead must cost throughput";
}

// ---- Cross-protocol ordering (paper Figs. 14-16 core claims) ----

TEST(ProtocolOrderingTest, NbRaftBeatsRaftAtHighConcurrency) {
  auto throughput = [](Protocol protocol) {
    ClusterConfig config = SmallConfig(protocol, 3, 64, 21);
    config.client_think = Micros(5);
    config.payload_size = 4096;
    Cluster cluster(config);
    cluster.Start();
    EXPECT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Seconds(1));
    return cluster.Collect().requests_completed;
  };
  const uint64_t raft = throughput(Protocol::kRaft);
  const uint64_t nb = throughput(Protocol::kNbRaft);
  EXPECT_GT(static_cast<double>(nb), static_cast<double>(raft) * 1.1)
      << "paper: ~30% improvement at high concurrency";
}

TEST(ProtocolOrderingTest, CRaftBeatsNbRaftOnLargePayloads) {
  auto throughput = [](Protocol protocol) {
    ClusterConfig config = SmallConfig(protocol, 3, 32, 23);
    config.client_think = Micros(5);
    config.payload_size = 64 * 1024;
    config.release_payloads = true;
    Cluster cluster(config);
    cluster.Start();
    EXPECT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Seconds(1));
    return cluster.Collect().requests_completed;
  };
  const uint64_t nb = throughput(Protocol::kNbRaft);
  const uint64_t craft = throughput(Protocol::kCRaft);
  EXPECT_GT(craft, nb) << "paper Fig. 16: CRaft wins at large payloads";
}

}  // namespace
}  // namespace nbraft::raft
