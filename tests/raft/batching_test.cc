// Adaptive AppendEntries batching (RaftOptions::max_batch_entries): the
// batched pipeline must preserve every safety property, actually coalesce
// under dispatcher contention, and degenerate to the unbatched wire
// protocol at the default of 1.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using raft_test::SmallConfig;

/// Few dispatchers + many clients builds dispatcher queues, the condition
/// batching amortizes.
ClusterConfig ContendedConfig(Protocol protocol, int max_batch) {
  ClusterConfig config = SmallConfig(protocol, 3, 8);
  config.dispatchers = 1;
  config.max_batch_entries = max_batch;
  return config;
}

uint64_t SumBatchedRpcs(Cluster* cluster) {
  uint64_t total = 0;
  for (int i = 0; i < cluster->num_nodes(); ++i) {
    total += cluster->node(i)->stats().batched_rpcs;
  }
  return total;
}

class BatchingTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(BatchingTest, BatchedReplicationIsSafeAndActuallyCoalesces) {
  Cluster cluster(ContendedConfig(GetParam(), 8));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(1));

  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.requests_completed, 100u);
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());

  EXPECT_GT(SumBatchedRpcs(&cluster), 0u);
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->stats().entries_per_rpc(), 1.0);
  // Batches are bounded by the configured cap.
  EXPECT_LE(leader->stats().entries_per_rpc(), 8.0);
}

TEST_P(BatchingTest, FollowersConvergeUnderBatching) {
  Cluster cluster(ContendedConfig(GetParam(), 8));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(1));  // Drain.

  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    RaftNode* n = cluster.node(i);
    EXPECT_EQ(n->log().LastIndex(), leader->log().LastIndex())
        << "node " << i << " lags";
    EXPECT_EQ(n->commit_index(), leader->commit_index());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, BatchingTest,
    ::testing::Values(Protocol::kRaft, Protocol::kNbRaft),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      std::string name(ProtocolName(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(BatchingTest, DefaultOfOneNeverBatches) {
  Cluster cluster(ContendedConfig(Protocol::kNbRaft, 1));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));

  EXPECT_EQ(SumBatchedRpcs(&cluster), 0u);
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    const NodeStats& stats = cluster.node(i)->stats();
    // One entry per RPC: the counters must agree exactly.
    EXPECT_EQ(stats.append_rpcs_sent, stats.append_entries_sent);
  }
}

TEST(BatchingTest, BatchingSurvivesLeaderCrashAndFailover) {
  Cluster cluster(ContendedConfig(Protocol::kNbRaft, 8));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(400));
  cluster.CrashLeader();
  cluster.RunFor(Seconds(1));
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.RunFor(Millis(400));
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(i)->crashed()) cluster.RestartNode(i);
  }
  cluster.StopAllClients();
  cluster.RunFor(Seconds(2));

  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.requests_completed, 50u);
}

}  // namespace
}  // namespace nbraft::raft
