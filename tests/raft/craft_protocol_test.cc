#include <gtest/gtest.h>

#include "craft/reed_solomon.h"
#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using raft_test::SmallConfig;

TEST(CRaftTest, FollowersStoreFragmentsNotFullEntries) {
  Cluster cluster(SmallConfig(Protocol::kCRaft, 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));

  RaftNode* leader = cluster.leader();
  int fragments_seen = 0;
  for (int i = 0; i < 3; ++i) {
    RaftNode* n = cluster.node(i);
    if (n == leader) continue;
    const auto& log = n->log();
    for (storage::LogIndex idx = log.FirstIndex(); idx <= log.LastIndex();
         ++idx) {
      const auto& e = log.AtUnchecked(idx);
      if (!e.IsFragment()) continue;
      ++fragments_seen;
      EXPECT_EQ(e.frag_k, 2u) << "3 replicas: k = F+1 = 2";
      EXPECT_GT(e.full_size, 0u);
      // Fragments carry roughly half the payload of the full entry.
      const auto& full = leader->log().AtUnchecked(idx);
      EXPECT_LT(e.payload.size(), full.payload.size());
    }
  }
  EXPECT_GT(fragments_seen, 50);
}

TEST(CRaftTest, LeaderKeepsFullEntriesAndApplies) {
  Cluster cluster(SmallConfig(Protocol::kCRaft, 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  RaftNode* leader = cluster.leader();
  const auto& sm =
      static_cast<const tsdb::TsdbStateMachine&>(leader->state_machine());
  EXPECT_GT(sm.ingested_points(), 0u)
      << "the leader holds full entries and can apply them";
  const auto& log = leader->log();
  for (storage::LogIndex i = log.FirstIndex(); i <= log.LastIndex(); ++i) {
    EXPECT_FALSE(log.AtUnchecked(i).IsFragment());
  }
}

TEST(CRaftTest, RealCodingRoundTripsThroughCluster) {
  ClusterConfig config = SmallConfig(Protocol::kCRaft, 3, 2);
  config.num_clients = 2;
  Cluster cluster(config);
  // Enable the real Reed–Solomon coder on the leader path.
  // (The Cluster applies protocol options at construction; rebuild nodes
  // via a fresh config is not exposed, so exercise the coder directly on
  // fragments pulled from follower logs instead.)
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(800));
  cluster.StopAllClients();
  cluster.RunFor(Millis(500));

  // Reconstruct one committed entry from follower fragments + leader slice
  // using the standalone coder with the same geometry.
  RaftNode* leader = cluster.leader();
  const auto& leader_log = leader->log();
  for (storage::LogIndex idx = leader_log.FirstIndex();
       idx <= leader->commit_index(); ++idx) {
    const auto& full = leader_log.AtUnchecked(idx);
    if (full.client_id == net::kInvalidNode) continue;
    // Geometry: k = 2, n = 3 for a 3-replica cluster.
    craft::ReedSolomon rs(2, 1);
    const auto shards = rs.Encode(full.payload);
    std::vector<std::optional<std::string>> subset(3);
    subset[0] = shards[0];
    subset[2] = shards[2];  // Any 2 of 3.
    auto decoded = rs.Decode(subset, full.payload.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), full.payload);
    break;
  }
}

TEST(CRaftTest, TwoReplicaClusterFallsBackToFullReplication) {
  // Paper Fig. 15: "CRaft does not work with only one follower, as entries
  // cannot be fragmented."
  Cluster cluster(SmallConfig(Protocol::kCRaft, 2, 2));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  for (int i = 0; i < 2; ++i) {
    const auto& log = cluster.node(i)->log();
    for (storage::LogIndex idx = log.FirstIndex(); idx <= log.LastIndex();
         ++idx) {
      EXPECT_FALSE(log.AtUnchecked(idx).IsFragment());
    }
  }
  EXPECT_GT(cluster.Collect().requests_completed, 20u);
}

TEST(CRaftTest, DegradedModeAfterFollowerCrash) {
  // CRaft's liveness fix: with a follower down, new entries replicate as
  // full copies (no fragments) so commits keep happening.
  Cluster cluster(SmallConfig(Protocol::kCRaft, 5, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(400));

  // Crash one non-leader node.
  for (int i = 0; i < 5; ++i) {
    if (cluster.node(i)->role() != Role::kLeader) {
      cluster.CrashNode(i);
      break;
    }
  }
  const uint64_t before = cluster.Collect().requests_completed;
  cluster.RunFor(Seconds(1));
  const harness::ClusterStats after = cluster.Collect();
  EXPECT_GT(after.requests_completed, before + 20)
      << "commits must continue in degraded mode";
  EXPECT_GT(after.degraded_entries, 0u);
}

TEST(CRaftTest, NbCRaftCombinationCommitsAndWeakAccepts) {
  ClusterConfig config = SmallConfig(Protocol::kNbCRaft, 3, 16);
  config.client_think = Micros(5);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.requests_completed, 100u);
  EXPECT_GT(stats.weak_accepts, 10u) << "NB side active";
  EXPECT_GT(stats.window_inserts, 10u);
  // CRaft side active: follower logs contain fragments.
  int fragments = 0;
  for (int i = 0; i < 3; ++i) {
    const auto& log = cluster.node(i)->log();
    for (storage::LogIndex idx = log.FirstIndex(); idx <= log.LastIndex();
         ++idx) {
      if (log.AtUnchecked(idx).IsFragment()) ++fragments;
    }
  }
  EXPECT_GT(fragments, 10);
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
}

TEST(ECRaftTest, KeepsCodingInDegradedModeWithOneFailure) {
  Cluster cluster(SmallConfig(Protocol::kECRaft, 5, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(400));
  for (int i = 0; i < 5; ++i) {
    if (cluster.node(i)->role() != Role::kLeader) {
      cluster.CrashNode(i);
      break;
    }
  }
  cluster.RunFor(Seconds(1));

  // ECRaft re-encodes with k' = alive - (F - dead) = 4 - 1 = 3: degraded
  // entries on followers should still be fragments (k = 3).
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  bool saw_k3_fragment = false;
  for (int i = 0; i < 5; ++i) {
    RaftNode* n = cluster.node(i);
    if (n == leader || n->crashed()) continue;
    const auto& log = n->log();
    for (storage::LogIndex idx = log.FirstIndex(); idx <= log.LastIndex();
         ++idx) {
      if (log.AtUnchecked(idx).frag_k == 3) saw_k3_fragment = true;
    }
  }
  EXPECT_TRUE(saw_k3_fragment);
  EXPECT_GT(cluster.Collect().degraded_entries, 0u);
}

}  // namespace
}  // namespace nbraft::raft
