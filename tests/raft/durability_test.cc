// Storage-error paths: a failing Wal::Sync must surface as a leader
// step-down or a follower halt — never as a process abort. Uses the
// backend_factory hook to inject a backend whose fsyncs can be armed to
// fail per node.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>

#include "harness/cluster.h"
#include "raft/raft_node.h"
#include "storage/log_backend.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using raft_test::SmallConfig;

/// Test switchboard shared by every injected backend: `sim` is filled in
/// after the Cluster exists (the factory only runs at node Start), and
/// `fail_budget` arms per-node fsync failures mid-run (-1 = every sync
/// fails, n > 0 = the next n syncs fail then the disk heals).
struct FailSwitch {
  sim::Simulator* sim = nullptr;
  std::map<int64_t, int> fail_budget;
};

class FlakySyncBackend : public storage::LogBackend {
 public:
  FlakySyncBackend(FailSwitch* sw, int64_t id) : switch_(sw), id_(id) {}

  bool instant() const override { return false; }
  Status Append(const storage::LogEntry&) override { return Status::Ok(); }
  void Sync(std::function<void(Status)> done) override {
    int& budget = switch_->fail_budget[id_];
    const bool fail = budget != 0;
    if (budget > 0) --budget;
    switch_->sim->After(Micros(20), [fail, done = std::move(done)]() {
      done(fail ? Status::IoError("injected fsync failure") : Status::Ok());
    });
  }
  Status Close() override { return Status::Ok(); }

 private:
  FailSwitch* switch_;
  int64_t id_;
};

std::unique_ptr<harness::Cluster> MakeCluster(FailSwitch* sw, uint64_t seed) {
  harness::ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, seed);
  config.backend_factory =
      [sw](int64_t id) -> std::unique_ptr<storage::LogBackend> {
    return std::make_unique<FlakySyncBackend>(sw, id);
  };
  auto cluster = std::make_unique<harness::Cluster>(config);
  sw->sim = cluster->sim();
  return cluster;
}

TEST(DurabilityFailureTest, LeaderStepsDownOnFsyncFailure) {
  FailSwitch sw;
  auto cluster = MakeCluster(&sw, 91);
  cluster->Start();
  ASSERT_TRUE(cluster->AwaitLeader());
  cluster->StartClients();
  cluster->RunFor(Millis(300));

  RaftNode* leader = cluster->leader();
  ASSERT_NE(leader, nullptr);
  const int leader_id = static_cast<int>(leader->id());
  ASSERT_GT(leader->stats().fsyncs_completed, 0u);

  // Arm: the leader's next fsync fails (the disk then heals, keeping the
  // step-down observable before any follow-on failure could crash it).
  sw.fail_budget[leader_id] = 1;
  for (int i = 0;
       i < 200 && cluster->node(leader_id)->stats().storage_failures == 0;
       ++i) {
    cluster->RunFor(Millis(10));
  }

  // The failure was counted and the old leader abdicated (no abort).
  ASSERT_GT(cluster->node(leader_id)->stats().storage_failures, 0u);
  cluster->RunFor(Millis(1));
  EXPECT_FALSE(cluster->node(leader_id)->crashed());
  EXPECT_NE(cluster->node(leader_id)->role(), Role::kLeader);

  // The cluster elects a working leader and proceeds.
  ASSERT_TRUE(cluster->AwaitLeader());
}

TEST(DurabilityFailureTest, FollowerHaltsOnFsyncFailure) {
  FailSwitch sw;
  auto cluster = MakeCluster(&sw, 92);
  cluster->Start();
  ASSERT_TRUE(cluster->AwaitLeader());
  cluster->StartClients();
  cluster->RunFor(Millis(300));

  RaftNode* leader = cluster->leader();
  ASSERT_NE(leader, nullptr);
  int follower = -1;
  for (int i = 0; i < cluster->num_nodes(); ++i) {
    if (cluster->node(i) != leader) {
      follower = i;
      break;
    }
  }
  ASSERT_GE(follower, 0);

  // Arm: the follower's disk goes bad for good. It must halt (crash)
  // rather than keep acknowledging entries it cannot make durable.
  sw.fail_budget[follower] = -1;
  cluster->RunFor(Millis(500));
  EXPECT_GT(cluster->node(follower)->stats().storage_failures, 0u);
  EXPECT_TRUE(cluster->node(follower)->crashed());

  // The rest of the cluster keeps a quorum and keeps committing.
  RaftNode* after = cluster->leader();
  ASSERT_NE(after, nullptr);
  const storage::LogIndex commit_before = after->commit_index();
  cluster->RunFor(Millis(300));
  ASSERT_NE(cluster->leader(), nullptr);
  EXPECT_GE(cluster->leader()->commit_index(), commit_before);
}

}  // namespace
}  // namespace nbraft::raft
