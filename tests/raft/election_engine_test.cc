#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "tests/raft/mock_node_context.h"

namespace nbraft::raft {
namespace {

using raft_test::MockNodeContext;

RaftOptions ElectionOptions() {
  RaftOptions options;
  options.election_timeout = Millis(150);
  return options;
}

RequestVoteRequest VoteRequest(storage::Term term, net::NodeId candidate) {
  RequestVoteRequest req;
  req.term = term;
  req.candidate = candidate;
  req.last_log_index = 0;
  req.last_log_term = 0;
  return req;
}

TEST(ElectionEngineTest, GrantsAtMostOneVotePerTerm) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3}, ElectionOptions());

  ctx.election()->HandleRequestVote(VoteRequest(5, 2));
  auto responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].granted);
  EXPECT_EQ(ctx.core().voted_for, 2);
  EXPECT_EQ(ctx.core().current_term, 5);

  // A second candidate in the same term is refused...
  ctx.election()->HandleRequestVote(VoteRequest(5, 3));
  responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[1].granted);
  EXPECT_EQ(ctx.core().voted_for, 2);

  // ...but the original candidate may be re-granted (lost response).
  ctx.election()->HandleRequestVote(VoteRequest(5, 2));
  responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[2].granted);

  // A higher term resets the vote.
  ctx.election()->HandleRequestVote(VoteRequest(6, 3));
  responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[3].granted);
  EXPECT_EQ(ctx.core().voted_for, 3);
}

TEST(ElectionEngineTest, RefusesCandidateWithStaleLog) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3}, ElectionOptions());
  ctx.FillLog(3, 2);  // Local log: 3 entries of term 2.

  RequestVoteRequest req = VoteRequest(5, 2);
  req.last_log_index = 2;  // Shorter log, same last term.
  req.last_log_term = 2;
  ctx.election()->HandleRequestVote(req);
  auto responses = ctx.SentOfType<RequestVoteResponse>();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].granted);
  EXPECT_EQ(ctx.core().voted_for, net::kInvalidNode);
}

TEST(ElectionEngineTest, QuorumOfVotesElectsAndMajorityDissentDoesNot) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3, 4, 5}, ElectionOptions());

  ctx.election()->StartElection();
  EXPECT_EQ(ctx.core().role, Role::kCandidate);
  EXPECT_EQ(ctx.SentOfType<RequestVoteRequest>().size(), 4u);

  RequestVoteResponse denied;
  denied.term = ctx.core().current_term;
  denied.from = 2;
  denied.granted = false;
  ctx.election()->HandleVoteResponse(denied);
  EXPECT_EQ(ctx.core().role, Role::kCandidate);

  RequestVoteResponse granted = denied;
  granted.granted = true;
  granted.from = 3;
  ctx.election()->HandleVoteResponse(granted);
  EXPECT_EQ(ctx.core().role, Role::kCandidate);  // 2 of 5: not a quorum.
  granted.from = 4;
  ctx.election()->HandleVoteResponse(granted);
  EXPECT_EQ(ctx.core().role, Role::kLeader);  // 3 of 5.

  // Duplicate grants from one voter must not have double-counted (the
  // vote set is keyed by node, so re-delivery is idempotent).
  EXPECT_EQ(ctx.stats().times_elected, 1u);
}

TEST(ElectionEngineTest, TimerSkewStretchesTheElectionTimeout) {
  // Two identically seeded nodes; only the skew differs. The nominal node
  // must fire its election within a couple of timeouts, the skewed one
  // (100x sluggish) must stay silent over the same horizon.
  sim::Simulator nominal_sim(11);
  MockNodeContext nominal(&nominal_sim, /*id=*/1, {2, 3}, ElectionOptions());
  nominal.election()->ArmElectionTimer();
  nominal_sim.RunUntil(Seconds(1));
  EXPECT_GT(nominal.core().current_term, 0);
  EXPECT_GT(nominal.stats().elections_started, 0u);

  sim::Simulator skewed_sim(11);
  MockNodeContext skewed(&skewed_sim, /*id=*/1, {2, 3}, ElectionOptions());
  skewed.election()->set_timer_skew(100.0);
  skewed.election()->ArmElectionTimer();
  skewed_sim.RunUntil(Seconds(1));
  EXPECT_EQ(skewed.core().current_term, 0);
  EXPECT_EQ(skewed.stats().elections_started, 0u);

  // The skewed timer still fires eventually (liveness, not deadness).
  skewed_sim.RunUntil(Seconds(60));
  EXPECT_GT(skewed.stats().elections_started, 0u);
}

TEST(ElectionEngineTest, StepDownFromLeaderDropsLeaderState) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3}, ElectionOptions());
  ctx.MakeLeader(3);
  ctx.FillLog(2, 3);
  ctx.applier()->vote_list().AddTuple(1, 3, 1, 2);
  ctx.applier()->vote_list().AddTuple(2, 3, 1, 2);
  ctx.pipeline()->EnqueueForPeer(2, 1);
  ASSERT_FALSE(ctx.applier()->LeaderStateEmpty());

  ctx.election()->StepDown(4, 2);
  EXPECT_EQ(ctx.core().role, Role::kFollower);
  EXPECT_EQ(ctx.core().current_term, 4);
  EXPECT_EQ(ctx.core().leader, 2);
  EXPECT_TRUE(ctx.applier()->LeaderStateEmpty());
  EXPECT_TRUE(ctx.pipeline()->LeaderStateEmpty());
  EXPECT_EQ(ctx.pipeline()->OutstandingRpcCount(), 0u);
}

}  // namespace
}  // namespace nbraft::raft
