#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using raft_test::SmallConfig;

TEST(ElectionTest, BootstrapElectsExactlyOneLeader) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  int leaders = 0;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() == Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(ElectionTest, SingleNodeClusterElectsItself) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 1, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  EXPECT_EQ(cluster.node(0)->role(), Role::kLeader);
}

TEST(ElectionTest, FollowersLearnLeaderViaHeartbeats) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.RunFor(Millis(200));
  const net::NodeId leader_id = cluster.leader()->id();
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->id() == leader_id) continue;
    EXPECT_EQ(cluster.node(i)->role(), Role::kFollower);
    EXPECT_EQ(cluster.node(i)->leader_hint(), leader_id);
  }
}

TEST(ElectionTest, NewLeaderAfterLeaderCrash) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  const storage::Term old_term = cluster.leader()->current_term();
  const int dead = cluster.CrashLeader();
  ASSERT_GE(dead, 0);
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  RaftNode* new_leader = cluster.leader();
  EXPECT_NE(new_leader->id(), dead);
  EXPECT_GT(new_leader->current_term(), old_term);
}

TEST(ElectionTest, NoQuorumNoLeader) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  // Kill two of three: the survivor must never become leader.
  cluster.CrashLeader();
  for (int i = 0; i < 3; ++i) {
    if (!cluster.node(i)->crashed() &&
        cluster.node(i)->role() != Role::kLeader) {
      cluster.CrashNode(i);
      break;
    }
  }
  cluster.RunFor(Seconds(4));
  EXPECT_EQ(cluster.leader(), nullptr);
}

TEST(ElectionTest, RestartedMajorityRecoversLeadership) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  const int dead = cluster.CrashLeader();
  // Kill one more: no quorum.
  int second = -1;
  for (int i = 0; i < 3; ++i) {
    if (!cluster.node(i)->crashed()) {
      second = i;
      cluster.CrashNode(i);
      break;
    }
  }
  cluster.RunFor(Seconds(2));
  EXPECT_EQ(cluster.leader(), nullptr);
  cluster.RestartNode(second);
  ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
  EXPECT_NE(cluster.leader()->id(), dead);
}

TEST(ElectionTest, ElectionSafetyAcrossSeeds) {
  // Property: at most one leader per term, under repeated leader crashes.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Cluster cluster(SmallConfig(Protocol::kRaft, 5, 0, seed));
    cluster.Start();
    std::map<storage::Term, std::set<net::NodeId>> leaders_by_term;
    for (int round = 0; round < 6; ++round) {
      cluster.RunFor(Millis(400));
      for (int i = 0; i < cluster.num_nodes(); ++i) {
        RaftNode* n = cluster.node(i);
        if (!n->crashed() && n->role() == Role::kLeader) {
          leaders_by_term[n->current_term()].insert(n->id());
        }
      }
      if (round == 2 && cluster.leader() != nullptr) {
        const int dead = cluster.CrashLeader();
        (void)dead;
      }
      if (round == 4) {
        for (int i = 0; i < cluster.num_nodes(); ++i) {
          if (cluster.node(i)->crashed()) cluster.RestartNode(i);
        }
      }
    }
    for (const auto& [term, ids] : leaders_by_term) {
      EXPECT_LE(ids.size(), 1u)
          << "two leaders in term " << term << " (seed " << seed << ")";
    }
  }
}

TEST(ElectionTest, TermsIncreaseMonotonically) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  storage::Term last = cluster.leader()->current_term();
  for (int round = 0; round < 3; ++round) {
    cluster.CrashLeader();
    ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
    const storage::Term now = cluster.leader()->current_term();
    EXPECT_GT(now, last);
    last = now;
    // Restart everything so the next round has a full cluster.
    for (int i = 0; i < 3; ++i) {
      if (cluster.node(i)->crashed()) cluster.RestartNode(i);
    }
    cluster.RunFor(Millis(300));
  }
}

TEST(ElectionTest, LeaderAppendsNoOpOnElection) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 0));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.RunFor(Millis(300));
  RaftNode* leader = cluster.leader();
  EXPECT_GE(leader->log().LastIndex(), 1);
  EXPECT_GE(leader->commit_index(), 1) << "no-op must commit via quorum";
}

}  // namespace
}  // namespace nbraft::raft
