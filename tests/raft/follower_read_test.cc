#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "raft/messages.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using raft_test::SmallConfig;

/// Sends a ReadRequest from a bare client endpoint to `server` and returns
/// the response (runs the simulation until it arrives).
ReadResponse ReadFrom(Cluster* cluster, net::NodeId server,
                      uint64_t series_id) {
  const net::NodeId reader = net::kClientIdBase + 999;
  ReadResponse out;
  bool got = false;
  cluster->network()->RegisterEndpoint(reader, [&](net::Message&& m) {
    out = *m.payload.Get<ReadResponse>();
    got = true;
  });
  ReadRequest req;
  req.client = reader;
  req.request_id = 1;
  req.series_id = series_id;
  cluster->network()->Send(reader, server, req.WireSize(), req);
  for (int i = 0; i < 100 && !got; ++i) cluster->RunFor(Millis(10));
  EXPECT_TRUE(got);
  cluster->network()->UnregisterEndpoint(reader);
  return out;
}

TEST(FollowerReadTest, RaftFollowersServeReads) {
  harness::ClusterConfig config = SmallConfig(Protocol::kRaft, 3, 2);
  config.workload.series_count = 3;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Millis(500));

  RaftNode* leader = cluster.leader();
  for (int i = 0; i < 3; ++i) {
    RaftNode* n = cluster.node(i);
    if (n == leader) continue;
    const ReadResponse resp = ReadFrom(&cluster, n->id(), 0);
    EXPECT_TRUE(resp.supported) << "Raft supports follower read (Table II)";
    EXPECT_EQ(resp.point_count, n->state_machine().PointCount(0));
    EXPECT_GT(resp.point_count, 0u);
  }
}

TEST(FollowerReadTest, NbRaftFollowersServeReads) {
  harness::ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 2);
  config.workload.series_count = 3;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  RaftNode* leader = cluster.leader();
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i) == leader) continue;
    EXPECT_TRUE(ReadFrom(&cluster, cluster.node(i)->id(), 0).supported);
  }
}

TEST(FollowerReadTest, CRaftFollowersCannotServeReads) {
  // Table II: "follower read is not supported in CRaft" — replicas hold
  // fragments, not data.
  harness::ClusterConfig config = SmallConfig(Protocol::kCRaft, 3, 2);
  config.workload.series_count = 3;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  RaftNode* leader = cluster.leader();
  for (int i = 0; i < 3; ++i) {
    RaftNode* n = cluster.node(i);
    if (n == leader) continue;
    EXPECT_FALSE(ReadFrom(&cluster, n->id(), 0).supported);
  }
}

TEST(FollowerReadTest, CRaftLeaderStillServesReads) {
  harness::ClusterConfig config = SmallConfig(Protocol::kCRaft, 3, 2);
  config.workload.series_count = 3;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  const ReadResponse resp =
      ReadFrom(&cluster, cluster.leader()->id(), 0);
  EXPECT_TRUE(resp.supported);
  EXPECT_GT(resp.point_count, 0u);
}

TEST(FollowerReadTest, UnknownSeriesReturnsZero) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 2));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.RunFor(Millis(200));
  const ReadResponse resp =
      ReadFrom(&cluster, cluster.leader()->id(), 987654);
  EXPECT_TRUE(resp.supported);
  EXPECT_EQ(resp.point_count, 0u);
}

}  // namespace
}  // namespace nbraft::raft
