// Leader-only state lifetimes: dispatcher queues, outstanding RPCs,
// fragment caches, the VoteList and per-entry commit timing must all be
// dropped when leadership is lost — by step-down or by crash — so nothing
// from one leadership leaks into the next (or holds memory while the node
// is a follower).

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using raft_test::SmallConfig;

class LeaderLifetimeTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(LeaderLifetimeTest, StepDownDropsAllLeaderVolatileState) {
  Cluster cluster(SmallConfig(GetParam(), 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));  // Build up in-flight replication state.

  RaftNode* old_leader = cluster.leader();
  ASSERT_NE(old_leader, nullptr);
  ASSERT_GT(old_leader->OutstandingRpcCount() +
                old_leader->DispatcherQueueDepth() +
                (old_leader->vote_list().empty() ? 0u : 1u),
            0u)
      << "test vacuous: no leader state built up";

  // A follower with a bumped term forces the leader to step down via the
  // higher-term RequestVote it receives.
  RaftNode* usurper = nullptr;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(i) != old_leader && !cluster.node(i)->crashed()) {
      usurper = cluster.node(i);
      break;
    }
  }
  ASSERT_NE(usurper, nullptr);
  usurper->TriggerElection();
  cluster.RunFor(Millis(50));  // Deliver the vote request; no re-election
                               // yet (election timeout is 300ms+).

  ASSERT_NE(old_leader->role(), Role::kLeader);
  EXPECT_TRUE(old_leader->LeaderVolatileStateEmpty())
      << "leader-only caches survived step-down";
  EXPECT_EQ(old_leader->OutstandingRpcCount(), 0u);
  EXPECT_EQ(old_leader->DispatcherQueueDepth(), 0u);
  EXPECT_TRUE(old_leader->vote_list().empty());

  // The cluster recovers and stays safe.
  cluster.StopAllClients();
  cluster.RunFor(Seconds(2));
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
}

TEST_P(LeaderLifetimeTest, CrashDropsAllLeaderVolatileState) {
  Cluster cluster(SmallConfig(GetParam(), 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  RaftNode* old_leader = cluster.leader();
  ASSERT_NE(old_leader, nullptr);
  cluster.CrashLeader();

  EXPECT_TRUE(old_leader->LeaderVolatileStateEmpty());
  EXPECT_EQ(old_leader->OutstandingRpcCount(), 0u);
  EXPECT_EQ(old_leader->DispatcherQueueDepth(), 0u);
  EXPECT_EQ(old_leader->window().size(), 0u);

  cluster.StopAllClients();
  cluster.RunFor(Seconds(2));
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, LeaderLifetimeTest,
    ::testing::Values(Protocol::kRaft, Protocol::kNbRaft, Protocol::kNbCRaft),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      std::string name(ProtocolName(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace nbraft::raft
