// MembershipEngine in isolation on the mock context: canonical
// Configuration encoding, joint-consensus quorum semantics (votes from
// removed nodes and learners never decide anything), the config-entry
// append/commit/rollback lifecycle, and ReconcileSelfRole's passive
// learner handling.

#include <gtest/gtest.h>

#include <set>

#include "raft/membership.h"
#include "sim/simulator.h"
#include "tests/raft/mock_node_context.h"

namespace nbraft::raft {
namespace {

using raft_test::MockNodeContext;

RaftOptions MembershipTestOptions() {
  RaftOptions options;
  options.election_timeout = Millis(150);
  return options;
}

Configuration Roster(std::vector<net::NodeId> voters,
                     std::vector<net::NodeId> learners = {}) {
  Configuration config;
  config.voters = std::move(voters);
  config.learners = std::move(learners);
  config.Normalize();
  return config;
}

TEST(ConfigurationTest, EncodeDecodeRoundTripIsCanonical) {
  Configuration config;
  config.voters = {2, 0, 1, 1};  // Unsorted with a duplicate.
  config.new_voters = {4, 3};
  config.learners = {5};
  config.Normalize();
  EXPECT_EQ(config.Encode(), "v=0,1,2;n=3,4;l=5");

  Configuration decoded;
  ASSERT_TRUE(Configuration::Decode(config.Encode(), &decoded));
  EXPECT_EQ(decoded, config);

  // Empty sections survive the round trip (a non-joint, learnerless
  // roster is the common case).
  const Configuration plain = Roster({0, 1, 2});
  EXPECT_EQ(plain.Encode(), "v=0,1,2;n=;l=");
  ASSERT_TRUE(Configuration::Decode(plain.Encode(), &decoded));
  EXPECT_EQ(decoded, plain);

  EXPECT_FALSE(Configuration::Decode("", &decoded));
  EXPECT_FALSE(Configuration::Decode("v=0,1,2", &decoded));
  EXPECT_FALSE(Configuration::Decode("v=0,x;n=;l=", &decoded));
}

TEST(ConfigurationTest, RoleQueries) {
  Configuration config;
  config.voters = {0, 1, 2};
  config.new_voters = {1, 2, 3};
  config.learners = {4};
  EXPECT_TRUE(config.joint());
  EXPECT_TRUE(config.IsVoter(0));   // Old generation only.
  EXPECT_TRUE(config.IsVoter(3));   // New generation only.
  EXPECT_FALSE(config.IsVoter(4));  // Learner.
  EXPECT_TRUE(config.IsLearner(4));
  EXPECT_TRUE(config.Knows(4));
  EXPECT_FALSE(config.Knows(9));
  EXPECT_EQ(config.OthersKnown(0), 4);  // 1, 2, 3, 4.
}

TEST(MembershipEngineTest, JointQuorumNeedsBothGenerations) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/0, {1, 2, 3, 4}, MembershipTestOptions());
  MembershipEngine* membership = ctx.membership();
  Configuration joint;
  joint.voters = {0, 1, 2};
  joint.new_voters = {2, 3, 4};
  membership->Bootstrap(joint);

  // Majority of C_old alone is not enough...
  EXPECT_FALSE(membership->QuorumSatisfied({0, 1}));
  // ...nor is a majority of C_new alone...
  EXPECT_FALSE(membership->QuorumSatisfied({3, 4}));
  // ...both together decide.
  EXPECT_TRUE(membership->QuorumSatisfied({0, 1, 3, 4}));
  EXPECT_TRUE(membership->QuorumSatisfied({1, 2, 3}));  // 2 spans both.
  // The count-based rule is the larger generation's majority.
  EXPECT_EQ(membership->CountQuorum(), 2);
}

TEST(MembershipEngineTest, NonVoterAcksNeverDecide) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/0, {1, 2, 3, 4}, MembershipTestOptions());
  MembershipEngine* membership = ctx.membership();
  membership->Bootstrap(Roster({0, 1, 2}, /*learners=*/{3}));

  // A removed/unknown node (9) and a learner (3) contribute nothing: the
  // invariant behind "no vote from a removed node decides an election".
  EXPECT_FALSE(membership->QuorumSatisfied({0, 9}));
  EXPECT_FALSE(membership->QuorumSatisfied({0, 3}));
  EXPECT_TRUE(membership->QuorumSatisfied({0, 1}));
}

TEST(MembershipEngineTest, ReconcileSelfRoleParksNonVotersAsLearners) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/5, {0, 1, 2}, MembershipTestOptions());
  MembershipEngine* membership = ctx.membership();

  // Bootstrapping a roster that does not include this node (a spare host
  // started before its AddLearner entry lands) parks it passive.
  membership->Bootstrap(Roster({0, 1, 2}));
  EXPECT_EQ(ctx.core().role, Role::kLearner);

  // Gaining the vote (recovered config from a later entry) reactivates it.
  membership->InstallRecovered(Roster({0, 1, 2, 5}), /*at=*/10);
  EXPECT_EQ(ctx.core().role, Role::kFollower);
}

TEST(MembershipEngineTest, AddLearnerAppendsConfigEntryAndStartsRecovery) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/0, {1, 2, 3}, MembershipTestOptions());
  MembershipEngine* membership = ctx.membership();
  membership->Bootstrap(Roster({0, 1, 2}));
  ctx.MakeLeader(/*term=*/1);

  ASSERT_TRUE(membership->ProposeAddLearner(3));
  EXPECT_TRUE(membership->IsLearner(3));
  const storage::LogEntry& entry = ctx.log().AtUnchecked(ctx.log().LastIndex());
  EXPECT_EQ(entry.client_id, kConfigClientId);
  Configuration decoded;
  ASSERT_TRUE(Configuration::Decode(entry.payload.view(), &decoded));
  EXPECT_EQ(decoded, membership->config());
  // The new roster was persisted as a durable marker at its entry index.
  ASSERT_FALSE(ctx.persisted_configs.empty());
  EXPECT_EQ(ctx.persisted_configs.back().second, entry.index);
  // The leader's recovery STM took the learner on.
  EXPECT_TRUE(ctx.recovery()->Tracking(3));

  // One change at a time: the next proposal waits for the commit.
  EXPECT_TRUE(membership->ChangeInFlight());
  EXPECT_FALSE(membership->ProposeAddLearner(4));
  ctx.core().commit_index = entry.index;
  membership->OnCommitAdvanced(entry.index);
  EXPECT_FALSE(membership->ChangeInFlight());
  EXPECT_EQ(ctx.stats().config_changes, 1u);
}

TEST(MembershipEngineTest, PromotionRunsJointThenFinalConfig) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/0, {1, 2, 3}, MembershipTestOptions());
  MembershipEngine* membership = ctx.membership();
  membership->Bootstrap(Roster({0, 1, 2}, /*learners=*/{3}));
  ctx.MakeLeader(/*term=*/1);

  ASSERT_TRUE(membership->ProposePromote(3));
  EXPECT_TRUE(membership->config().joint());
  EXPECT_TRUE(membership->IsVoter(3));  // Effective at append time.
  EXPECT_EQ(ctx.stats().learners_promoted, 1u);
  const storage::LogIndex joint_index = ctx.log().LastIndex();

  // Committing C_old,new makes the leader append plain C_new (deferred one
  // simulator event so it never reenters the commit path).
  ctx.core().commit_index = joint_index;
  membership->OnCommitAdvanced(joint_index);
  sim.RunUntil(sim.Now() + Millis(1));  // Drains the After(0) deferral only.
  EXPECT_FALSE(membership->config().joint());
  EXPECT_TRUE(membership->config().IsVoter(3));
  EXPECT_FALSE(membership->config().IsLearner(3));
  const storage::LogIndex final_index = ctx.log().LastIndex();
  EXPECT_EQ(final_index, joint_index + 1);

  ctx.core().commit_index = final_index;
  membership->OnCommitAdvanced(final_index);
  EXPECT_FALSE(membership->ChangeInFlight());
  EXPECT_EQ(ctx.stats().config_changes, 1u);  // Joint windows count once.
}

TEST(MembershipEngineTest, TruncationRollsConfigurationBack) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/0, {1, 2, 3}, MembershipTestOptions());
  MembershipEngine* membership = ctx.membership();
  const Configuration initial = Roster({0, 1, 2});
  membership->Bootstrap(initial);
  ctx.MakeLeader(/*term=*/1);

  ASSERT_TRUE(membership->ProposeAddLearner(3));
  const storage::LogIndex entry_index = ctx.log().LastIndex();
  ASSERT_TRUE(membership->Knows(3));

  // A conflicting suffix from a new leader truncates the entry: the
  // supplanted roster comes back and is re-persisted (last marker wins).
  membership->OnTruncated(entry_index);
  EXPECT_EQ(membership->config(), initial);
  EXPECT_EQ(membership->config_index(), 0);
  EXPECT_FALSE(membership->Knows(3));
  ASSERT_FALSE(ctx.persisted_configs.empty());
  EXPECT_EQ(ctx.persisted_configs.back().first, initial.Encode());
}

TEST(MembershipEngineTest, RemoveNeverEmptiesTheRoster) {
  sim::Simulator sim(7);
  MockNodeContext ctx(&sim, /*id=*/0, {1, 2}, MembershipTestOptions());
  MembershipEngine* membership = ctx.membership();
  membership->Bootstrap(Roster({0}));
  ctx.MakeLeader(/*term=*/1);
  EXPECT_FALSE(membership->ProposeRemove(0));
  EXPECT_TRUE(membership->SelfIsVoter());
}

}  // namespace
}  // namespace nbraft::raft
