#ifndef NBRAFT_TESTS_RAFT_MOCK_NODE_CONTEXT_H_
#define NBRAFT_TESTS_RAFT_MOCK_NODE_CONTEXT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/payload.h"

#include "raft/commit_applier.h"
#include "raft/election_engine.h"
#include "raft/follower_ingress.h"
#include "raft/membership.h"
#include "raft/messages.h"
#include "raft/node_context.h"
#include "raft/recovery_stm.h"
#include "raft/replication_pipeline.h"
#include "sim/cpu_executor.h"
#include "sim/simulator.h"
#include "tsdb/state_machine.h"

namespace nbraft::raft_test {

/// NodeContext double for driving a single engine in isolation: outbound
/// messages are recorded instead of hitting a network, persistence is a
/// no-op, and the sibling engines are real (they are cheap and an engine
/// under test may legitimately call into them).
class MockNodeContext : public raft::NodeContext {
 public:
  struct SentMessage {
    net::NodeId to = net::kInvalidNode;
    size_t bytes = 0;
    net::PayloadRef payload;
  };

  MockNodeContext(sim::Simulator* sim, net::NodeId id,
                  std::vector<net::NodeId> peers, raft::RaftOptions options)
      : sim_(sim),
        id_(id),
        peers_(std::move(peers)),
        options_(options),
        rng_(sim->rng()->Next()),
        state_machine_(std::make_unique<tsdb::TsdbStateMachine>()) {
    cpu_ = std::make_unique<sim::CpuExecutor>(sim_, options_.cpu_lanes,
                                              "mock.cpu");
    index_lane_ = std::make_unique<sim::CpuExecutor>(sim_, 1, "mock.index");
    apply_lane_ = std::make_unique<sim::CpuExecutor>(sim_, 1, "mock.apply");
    log_lock_lane_ =
        std::make_unique<sim::CpuExecutor>(sim_, 1, "mock.loglock");
    election_ = std::make_unique<raft::ElectionEngine>(this);
    pipeline_ = std::make_unique<raft::ReplicationPipeline>(this);
    ingress_ = std::make_unique<raft::FollowerIngress>(this);
    applier_ = std::make_unique<raft::CommitApplier>(this);
    // Dormant until a test calls membership()->Bootstrap(...).
    membership_ = std::make_unique<raft::MembershipEngine>(this);
    recovery_ = std::make_unique<raft::RecoveryStm>(this);
  }

  // ---- NodeContext ----
  sim::Simulator* simulator() override { return sim_; }
  net::NodeId id() const override { return id_; }
  const std::vector<net::NodeId>& peer_ids() const override {
    return peers_;
  }
  const raft::RaftOptions& options() const override { return options_; }
  nbraft::Rng& rng() override { return rng_; }
  raft::NodeStats& stats() override { return stats_; }
  obs::Tracer* tracer() const override { return nullptr; }
  tsdb::StateMachine* mutable_state_machine() override {
    return state_machine_.get();
  }
  sim::CpuExecutor* cpu() override { return cpu_.get(); }
  sim::CpuExecutor* index_lane() override { return index_lane_.get(); }
  sim::CpuExecutor* apply_lane() override { return apply_lane_.get(); }
  sim::CpuExecutor* log_lock_lane() override { return log_lock_lane_.get(); }
  raft::CoreState& core() override { return core_; }
  const raft::CoreState& core() const override { return core_; }
  storage::RaftLog& log() override { return log_; }
  const storage::RaftLog& log() const override { return log_; }
  void SendTo(net::NodeId to, size_t bytes, net::PayloadRef payload) override {
    sent.push_back(SentMessage{to, bytes, std::move(payload)});
  }
  raft::MembershipEngine* membership() override { return membership_.get(); }
  raft::RecoveryStm* recovery() override { return recovery_.get(); }
  void PersistEntry(const storage::LogEntry&) override {}
  void PersistTruncate(storage::LogIndex) override {}
  void PersistConfig(const std::string& encoded,
                     storage::LogIndex at) override {
    persisted_configs.emplace_back(encoded, at);
  }
  void PersistHardState() override {}
  void PersistSnapshot(storage::LogIndex, storage::Term, const std::string&,
                       bool) override {}
  void PersistCompact(storage::LogIndex) override {}
  bool DurabilityInstant() const override { return true; }
  void WhenDurable(std::function<void()> fn) override { fn(); }
  storage::LogIndex DurableEntryFrontier() const override {
    return log_.LastIndex();
  }
  void OnStorageFailure(const Status&) override {}
  void ClearHealQuarantine() override { core_.heal_quarantine = false; }
  void TracePhase(metrics::Phase phase, SimTime start, SimTime end,
                  int64_t, int64_t, uint64_t) override {
    stats_.breakdown.Add(phase, end - start);
  }
  int64_t TraceTermAt(storage::LogIndex) const override { return 0; }
  raft::ElectionEngine* election() override { return election_.get(); }
  raft::ReplicationPipeline* pipeline() override { return pipeline_.get(); }
  raft::FollowerIngress* ingress() override { return ingress_.get(); }
  raft::CommitApplier* applier() override { return applier_.get(); }

  // ---- Test helpers ----
  /// Appends `count` entries of `term` after the current log end.
  void FillLog(int count, storage::Term term) {
    for (int i = 0; i < count; ++i) {
      storage::LogEntry e;
      e.index = log_.LastIndex() + 1;
      e.term = term;
      e.prev_term = log_.LastTerm();
      e.payload = "p";
      e.payload_size_hint = 1;
      log_.Append(e);
    }
  }

  void MakeLeader(storage::Term term) {
    core_.current_term = term;
    core_.role = raft::Role::kLeader;
    core_.leader = id_;
  }

  /// All recorded messages of payload type T, in send order.
  template <typename T>
  std::vector<T> SentOfType() const {
    std::vector<T> out;
    for (const SentMessage& m : sent) {
      if (const T* p = m.payload.Get<T>()) out.push_back(*p);
    }
    return out;
  }

  std::vector<SentMessage> sent;
  /// Every PersistConfig call, in order (encoded roster, effective index).
  std::vector<std::pair<std::string, storage::LogIndex>> persisted_configs;

 private:
  sim::Simulator* sim_;
  const net::NodeId id_;
  std::vector<net::NodeId> peers_;
  raft::RaftOptions options_;
  nbraft::Rng rng_;
  std::unique_ptr<tsdb::StateMachine> state_machine_;
  std::unique_ptr<sim::CpuExecutor> cpu_;
  std::unique_ptr<sim::CpuExecutor> index_lane_;
  std::unique_ptr<sim::CpuExecutor> apply_lane_;
  std::unique_ptr<sim::CpuExecutor> log_lock_lane_;
  raft::CoreState core_;
  storage::RaftLog log_;
  raft::NodeStats stats_;
  std::unique_ptr<raft::ElectionEngine> election_;
  std::unique_ptr<raft::ReplicationPipeline> pipeline_;
  std::unique_ptr<raft::FollowerIngress> ingress_;
  std::unique_ptr<raft::CommitApplier> applier_;
  std::unique_ptr<raft::MembershipEngine> membership_;
  std::unique_ptr<raft::RecoveryStm> recovery_;
};

}  // namespace nbraft::raft_test

#endif  // NBRAFT_TESTS_RAFT_MOCK_NODE_CONTEXT_H_
