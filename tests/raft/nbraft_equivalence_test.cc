// Paper Sec. III, contribution (3): "the original Raft protocol is indeed
// a special case of our NB-Raft with window size zero". These tests verify
// the claim behaviourally: an NB-Raft cluster configured with w = 0 makes
// exactly the decisions of the Raft cluster — identical committed log,
// identical client results, no weak accepts ever — across seeds.

#include <gtest/gtest.h>

#include <vector>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using raft_test::SmallConfig;

struct RunDigest {
  std::vector<std::pair<storage::LogIndex, uint64_t>> committed;  // request.
  uint64_t completed = 0;
  uint64_t weak_accepts = 0;
};

RunDigest RunCluster(const ClusterConfig& config) {
  Cluster cluster(config);
  cluster.Start();
  EXPECT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Millis(500));

  RunDigest digest;
  RaftNode* leader = cluster.leader();
  EXPECT_NE(leader, nullptr);
  const auto& log = leader->log();
  for (storage::LogIndex i = log.FirstIndex();
       i <= leader->commit_index() && i <= log.LastIndex(); ++i) {
    digest.committed.emplace_back(i, log.AtUnchecked(i).request_id);
  }
  const harness::ClusterStats stats = cluster.Collect();
  digest.completed = stats.requests_completed;
  digest.weak_accepts = stats.weak_accepts;
  return digest;
}

class EquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceTest, WindowZeroReproducesRaftExactly) {
  ClusterConfig raft_config = SmallConfig(Protocol::kRaft, 3, 8,
                                          GetParam());
  ClusterConfig nb0_config = SmallConfig(Protocol::kNbRaft, 3, 8,
                                         GetParam());
  nb0_config.window_size = 0;  // NB-Raft with w = 0.

  const RunDigest raft = RunCluster(raft_config);
  const RunDigest nb0 = RunCluster(nb0_config);

  EXPECT_EQ(nb0.weak_accepts, 0u) << "w = 0 can never cache an entry";
  EXPECT_EQ(nb0.committed, raft.committed)
      << "identical committed sequence required";
  EXPECT_EQ(nb0.completed, raft.completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1, 7, 13, 42, 99));

TEST(EquivalenceTest, WindowZeroBehavesLikeRaftUnderLeaderCrash) {
  for (uint64_t seed : {3u, 11u}) {
    ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, seed);
    config.window_size = 0;
    Cluster cluster(config);
    cluster.Start();
    ASSERT_TRUE(cluster.AwaitLeader());
    cluster.StartClients();
    cluster.RunFor(Millis(400));
    cluster.CrashLeader();
    ASSERT_TRUE(cluster.AwaitLeader(Seconds(5)));
    cluster.RunFor(Millis(500));
    EXPECT_TRUE(cluster.CheckLogMatching().ok());
    EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
    EXPECT_EQ(cluster.Collect().weak_accepts, 0u);
  }
}

TEST(EquivalenceTest, GrowingWindowMonotonicallyEnablesCaching) {
  // w = 0 gives no weak accepts; a large window gives many; a mid-size
  // window sits in between.
  uint64_t weak_at[3];
  const int windows[3] = {0, 4, 10000};
  for (int i = 0; i < 3; ++i) {
    ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 16, 5);
    config.window_size = windows[i];
    config.client_think = Micros(5);
    weak_at[i] = RunCluster(config).weak_accepts;
  }
  EXPECT_EQ(weak_at[0], 0u);
  EXPECT_GT(weak_at[2], weak_at[0]);
  EXPECT_GE(weak_at[2], weak_at[1]);
}

}  // namespace
}  // namespace nbraft::raft
