#include "raft/node_stats.h"

#include <gtest/gtest.h>

namespace nbraft::raft {
namespace {

TEST(NodeStatsTest, EntriesPerRpcAveragesBatchSizes) {
  NodeStats stats;
  EXPECT_DOUBLE_EQ(stats.entries_per_rpc(), 0.0);  // No RPCs yet.

  stats.append_rpcs_sent = 4;
  stats.append_entries_sent = 4;
  EXPECT_DOUBLE_EQ(stats.entries_per_rpc(), 1.0);  // Unbatched.

  stats.append_rpcs_sent = 4;
  stats.append_entries_sent = 10;
  stats.batched_rpcs = 2;
  EXPECT_DOUBLE_EQ(stats.entries_per_rpc(), 2.5);
}

TEST(NodeStatsTest, ToJsonCarriesEveryCounter) {
  NodeStats stats;
  stats.entries_appended = 11;
  stats.entries_committed = 7;
  stats.append_rpcs_sent = 4;
  stats.append_entries_sent = 10;
  stats.batched_rpcs = 2;
  stats.breakdown.Add(metrics::Phase::kCommit, Millis(1));
  stats.wait_hist.Record(100);

  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"entries_appended\":11"), std::string::npos);
  EXPECT_NE(json.find("\"entries_committed\":7"), std::string::npos);
  EXPECT_NE(json.find("\"append_rpcs_sent\":4"), std::string::npos);
  EXPECT_NE(json.find("\"append_entries_sent\":10"), std::string::npos);
  EXPECT_NE(json.find("\"batched_rpcs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"entries_per_rpc\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"wait_hist\":"), std::string::npos);
  EXPECT_NE(json.find("\"append_latency\":"), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\":"), std::string::npos);
  // Well-formed object: balanced braces, no trailing comma before '}'.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

}  // namespace
}  // namespace nbraft::raft
