// Unit tests of the client-side protocol (Sec. III-C) against a scripted
// fake server endpoint — no real cluster involved, so each response path
// is exercised precisely.

#include "raft/raft_client.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace nbraft::raft {
namespace {

constexpr net::NodeId kServerA = 0;
constexpr net::NodeId kServerB = 1;
constexpr net::NodeId kClient = net::kClientIdBase;

class RaftClientTest : public ::testing::Test {
 protected:
  RaftClientTest() : sim_(1) {
    net::NetworkConfig config;
    config.jitter_mean = 0;
    config.base_latency = Micros(50);
    network_ = std::make_unique<net::SimNetwork>(&sim_, config);
    network_->RegisterEndpoint(kServerA, [this](net::Message&& m) {
      requests_a_.push_back(*m.payload.Get<ClientRequest>());
    });
    network_->RegisterEndpoint(kServerB, [this](net::Message&& m) {
      requests_b_.push_back(*m.payload.Get<ClientRequest>());
    });
  }

  RaftClient::Options DefaultOptions(int window) {
    RaftClient::Options options;
    options.think_time = Micros(10);
    options.payload_size = 64;
    options.pipeline_window = window;
    options.backoff_base = Millis(100);
    options.backoff_cap = Millis(400);
    options.backoff_multiplier = 2.0;
    return options;
  }

  std::unique_ptr<RaftClient> MakeClient(int window) {
    return std::make_unique<RaftClient>(
        &sim_, network_.get(), kClient,
        std::vector<net::NodeId>{kServerA, kServerB}, DefaultOptions(window),
        [](size_t target) { return std::string(target, 'p'); });
  }

  void Respond(const ClientRequest& req, AcceptState state,
               storage::LogIndex index, storage::Term term,
               net::NodeId hint = net::kInvalidNode) {
    ClientResponse resp;
    resp.state = state;
    resp.request_id = req.request_id;
    resp.index = index;
    resp.term = term;
    resp.leader_hint = hint;
    network_->Send(kServerA, kClient, resp.WireSize(), resp);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::SimNetwork> network_;
  std::vector<ClientRequest> requests_a_;
  std::vector<ClientRequest> requests_b_;
};

TEST_F(RaftClientTest, IssuesFirstRequestAfterThinkTime) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(1));
  ASSERT_EQ(requests_a_.size(), 1u);
  EXPECT_EQ(requests_a_[0].client, kClient);
  EXPECT_EQ(requests_a_[0].payload.size(), 64u);
  EXPECT_EQ(client->stats().requests_issued, 1u);
}

TEST_F(RaftClientTest, RaftModeBlocksUntilStrongAccept) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(requests_a_.size(), 1u);
  // No response yet -> no second request (Fig. 1(a)).
  EXPECT_EQ(requests_a_.size(), 1u);

  Respond(requests_a_[0], AcceptState::kStrongAccept, 1, 1);
  sim_.RunUntil(Millis(10));
  ASSERT_EQ(requests_a_.size(), 2u);
  EXPECT_EQ(client->stats().requests_completed, 1u);
}

TEST_F(RaftClientTest, WeakAcceptUnblocksNextRequest) {
  auto client = MakeClient(8);
  client->Start();
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(requests_a_.size(), 1u);

  // WEAK_ACCEPT alone releases the next request (Fig. 1(b)) but completes
  // nothing.
  Respond(requests_a_[0], AcceptState::kWeakAccept, 1, 1);
  sim_.RunUntil(Millis(10));
  ASSERT_EQ(requests_a_.size(), 2u);
  EXPECT_EQ(client->stats().weak_accepts, 1u);
  EXPECT_EQ(client->stats().requests_completed, 0u);

  // The covering STRONG_ACCEPT completes the weakly accepted request.
  Respond(requests_a_[1], AcceptState::kStrongAccept, 2, 1);
  sim_.RunUntil(Millis(15));
  EXPECT_EQ(client->stats().requests_completed, 2u)
      << "strong accept at index 2 covers the opList entry at index 1";
}

TEST_F(RaftClientTest, PipelineBoundedByWindow) {
  auto client = MakeClient(2);
  client->Start();
  sim_.RunUntil(Millis(5));
  // Weak-accept everything that shows up; the opList bound (w = 2) must
  // cap the pipeline at w + 1 outstanding requests.
  for (int round = 0; round < 10; ++round) {
    for (const auto& req : requests_a_) {
      bool already = false;
      // Only respond once per request id (track via index heuristic).
      static std::set<uint64_t> seen;
      already = !seen.insert(req.request_id).second;
      if (!already) {
        Respond(req, AcceptState::kWeakAccept,
                static_cast<storage::LogIndex>(seen.size()), 1);
      }
    }
    sim_.RunUntil(sim_.Now() + Millis(5));
  }
  EXPECT_LE(client->stats().requests_issued, 2u + 1u + 1u);
}

TEST_F(RaftClientTest, NewerTermTriggersRetryOfOpList) {
  auto client = MakeClient(8);
  client->Start();
  sim_.RunUntil(Millis(5));
  Respond(requests_a_[0], AcceptState::kWeakAccept, 1, /*term=*/1);
  sim_.RunUntil(Millis(10));
  ASSERT_EQ(requests_a_.size(), 2u);

  // A weak accept with a HIGHER term: the old opList entry must be retried
  // (Sec. III-C1).
  Respond(requests_a_[1], AcceptState::kWeakAccept, 5, /*term=*/2);
  sim_.RunUntil(Millis(20));
  EXPECT_EQ(client->stats().retries, 1u);
  // The retried request is re-sent with its original id.
  ASSERT_GE(requests_a_.size(), 3u);
  EXPECT_EQ(requests_a_[2].request_id, requests_a_[0].request_id);
}

TEST_F(RaftClientTest, LeaderChangedRedirectsAndRetries) {
  auto client = MakeClient(8);
  client->Start();
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(requests_a_.size(), 1u);

  Respond(requests_a_[0], AcceptState::kLeaderChanged, 0, 2, kServerB);
  sim_.RunUntil(Millis(20));
  ASSERT_GE(requests_b_.size(), 1u) << "client must follow the hint";
  EXPECT_EQ(requests_b_[0].request_id, requests_a_[0].request_id);
  EXPECT_EQ(client->stats().leader_changes_seen, 1u);
}

TEST_F(RaftClientTest, NotLeaderResendsToHint) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(5));
  Respond(requests_a_[0], AcceptState::kNotLeader, 0, 0, kServerB);
  sim_.RunUntil(Millis(20));
  ASSERT_EQ(requests_b_.size(), 1u);
  EXPECT_EQ(requests_b_[0].request_id, requests_a_[0].request_id);
}

TEST_F(RaftClientTest, TimeoutRotatesServers) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(requests_a_.size(), 1u);
  // Never respond: after the first timeout (100 ms base + <=25% jitter)
  // the client tries server B.
  sim_.RunUntil(Millis(150));
  ASSERT_GE(requests_b_.size(), 1u);
  EXPECT_EQ(requests_b_[0].request_id, requests_a_[0].request_id);
  EXPECT_GE(client->stats().timeouts, 1u);
}

TEST_F(RaftClientTest, ResendBackoffIsCappedExponential) {
  auto client = MakeClient(0);
  client->Start();
  // Never respond. With base 100 ms, cap 400 ms, multiplier 2 and <=25%
  // jitter the waits are <=125, <=250, <=500, <=500... so by 1.4 s at
  // least 3 timeouts must have fired; a fixed 100 ms timer would have
  // fired 13+ times by then.
  sim_.RunUntil(Millis(1400));
  EXPECT_GE(client->stats().timeouts, 3u);
  EXPECT_LE(client->stats().timeouts, 13u - 1u);
  EXPECT_EQ(client->stats().backoff_resets, 0u);
}

TEST_F(RaftClientTest, ResponseAfterTimeoutResetsBackoff) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(requests_a_.size(), 1u);
  // Let at least one timeout fire, then answer: the backoff must snap
  // back to base and count a reset.
  sim_.RunUntil(Millis(150));
  ASSERT_GE(client->stats().timeouts, 1u);
  ClientRequest last = requests_a_.back();
  if (!requests_b_.empty()) last = requests_b_.back();
  Respond(last, AcceptState::kStrongAccept, 1, 1);
  sim_.RunUntil(Millis(200));
  EXPECT_EQ(client->stats().backoff_resets, 1u);
  EXPECT_EQ(client->stats().requests_completed, 1u);
}

TEST_F(RaftClientTest, FreshLeaderHintIsRetriedBeforeRotation) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(requests_a_.size(), 1u);
  // Server A redirects to B, which never answers. The first timeout must
  // re-try the hinted B (hints beat blind rotation), and only the next
  // one rotates back to A.
  Respond(requests_a_[0], AcceptState::kNotLeader, 0, 0, kServerB);
  sim_.RunUntil(Millis(150));
  ASSERT_GE(requests_b_.size(), 2u)
      << "first timeout must re-try the hinted leader";
  EXPECT_EQ(requests_b_[1].request_id, requests_a_[0].request_id);
  EXPECT_EQ(requests_a_.size(), 1u);
  sim_.RunUntil(Millis(400));
  EXPECT_GE(requests_a_.size(), 2u) << "second timeout falls back to rotation";
}

TEST_F(RaftClientTest, RecordsAckedRequestIds) {
  auto options = DefaultOptions(8);
  options.record_ack_ids = true;
  auto client = std::make_unique<RaftClient>(
      &sim_, network_.get(), kClient,
      std::vector<net::NodeId>{kServerA, kServerB}, options,
      [](size_t target) { return std::string(target, 'p'); });
  client->Start();
  sim_.RunUntil(Millis(5));
  ASSERT_EQ(requests_a_.size(), 1u);
  Respond(requests_a_[0], AcceptState::kWeakAccept, 1, 1);
  sim_.RunUntil(Millis(10));
  ASSERT_EQ(requests_a_.size(), 2u);
  Respond(requests_a_[1], AcceptState::kStrongAccept, 2, 1);
  sim_.RunUntil(Millis(15));
  EXPECT_EQ(client->weak_acked_ids().count(requests_a_[0].request_id), 1u);
  // The strong accept at index 2 covers both the opList entry and the
  // directly answered request.
  EXPECT_EQ(client->strong_acked_ids().count(requests_a_[0].request_id), 1u);
  EXPECT_EQ(client->strong_acked_ids().count(requests_a_[1].request_id), 1u);
}

TEST_F(RaftClientTest, StopCeasesTraffic) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(5));
  client->Stop();
  const size_t sent = requests_a_.size();
  Respond(requests_a_[0], AcceptState::kStrongAccept, 1, 1);
  sim_.RunUntil(Millis(300));
  EXPECT_EQ(requests_a_.size(), sent);
  EXPECT_TRUE(client->stopped());
}

TEST_F(RaftClientTest, MeasurementResetZeroesCounters) {
  auto client = MakeClient(0);
  client->Start();
  sim_.RunUntil(Millis(5));
  Respond(requests_a_[0], AcceptState::kStrongAccept, 1, 1);
  sim_.RunUntil(Millis(10));
  EXPECT_EQ(client->stats().requests_completed, 1u);
  client->ResetMeasurement();
  EXPECT_EQ(client->stats().requests_completed, 0u);
  EXPECT_EQ(client->stats().completion_latency.count(), 0u);
  // Total issued survives the reset (used by loss accounting).
  EXPECT_GE(client->requests_issued_total(), 1u);
}

}  // namespace
}  // namespace nbraft::raft
