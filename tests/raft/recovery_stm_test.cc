// RecoveryStm in isolation on the mock context: the per-round throttle,
// the deterministic capped backoff while a learner stalls, the
// snapshot-install stage (entered when the needed tail was compacted,
// resumed without double-sending), and the promotion threshold on the
// learner's contiguous durable prefix.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "raft/membership.h"
#include "raft/recovery_stm.h"
#include "sim/simulator.h"
#include "tests/raft/mock_node_context.h"

namespace nbraft::raft {
namespace {

using raft_test::MockNodeContext;

constexpr net::NodeId kLearner = 3;

RaftOptions RecoveryOptions() {
  RaftOptions options;
  options.election_timeout = Millis(150);
  options.membership.recovery_interval = Millis(10);
  options.membership.recovery_max_entries_per_round = 4;
  options.membership.recovery_backoff_base = Millis(20);
  options.membership.recovery_backoff_cap = Millis(160);
  options.membership.promotion_lag = 16;
  return options;
}

/// A leader with voters {0,1,2} and learner 3, `log_entries` deep.
struct Fixture {
  Fixture(sim::Simulator* sim, int log_entries,
          RaftOptions options = RecoveryOptions())
      : ctx(sim, /*id=*/0, {1, 2, kLearner}, options) {
    Configuration config;
    config.voters = {0, 1, 2};
    config.learners = {kLearner};
    ctx.membership()->Bootstrap(config);
    ctx.MakeLeader(/*term=*/1);
    ctx.FillLog(log_entries, /*term=*/1);
  }

  /// Highest entry index sent to the learner so far (0 when none).
  storage::LogIndex MaxIndexSent() const {
    storage::LogIndex max_index = 0;
    for (const auto& m : ctx.sent) {
      if (m.to != kLearner) continue;
      const auto* req = m.payload.Get<AppendEntriesRequest>();
      if (req == nullptr || req->is_heartbeat) continue;
      max_index = std::max(max_index, req->entry.index);
      for (const auto& e : req->extra_entries) {
        max_index = std::max(max_index, e.index);
      }
    }
    return max_index;
  }

  MockNodeContext ctx;
};

void RunUntilRounds(sim::Simulator* sim, Fixture* f, int rounds) {
  for (int i = 0; i < 1000 && f->ctx.recovery()->RoundsFor(kLearner) < rounds;
       ++i) {
    sim->RunUntil(sim->Now() + Millis(5));
  }
  ASSERT_GE(f->ctx.recovery()->RoundsFor(kLearner), rounds);
}

TEST(RecoveryStmTest, ThrottleCapsEntriesPerRound) {
  sim::Simulator sim(7);
  Fixture f(&sim, /*log_entries=*/100);
  f.ctx.recovery()->StartRecovery(kLearner);
  EXPECT_TRUE(f.ctx.recovery()->Tracking(kLearner));

  // However many rounds fire, no entry beyond matched + cap may ever be
  // read out while the learner reports no progress.
  RunUntilRounds(&sim, &f, 3);
  EXPECT_EQ(f.ctx.recovery()->StageOf(kLearner), RecoveryStm::Stage::kLogTail);
  EXPECT_LE(f.MaxIndexSent(), 4);

  // Progress slides the throttle window forward, nothing more.
  f.ctx.recovery()->OnProgress(kLearner, 4);
  const int rounds = f.ctx.recovery()->RoundsFor(kLearner);
  RunUntilRounds(&sim, &f, rounds + 2);
  EXPECT_LE(f.MaxIndexSent(), 8);
}

TEST(RecoveryStmTest, StalledLearnerBacksOffDeterministically) {
  sim::Simulator sim(7);
  Fixture f(&sim, /*log_entries=*/100);
  f.ctx.recovery()->StartRecovery(kLearner);

  // Delay scheduled after round r, with zero progress throughout: one
  // fresh round at the base interval, then 20 * 2^(stalls-1) capped at
  // 160 — a deterministic sequence, no jitter to desynchronize replays.
  const std::vector<SimDuration> expected = {Millis(10),  Millis(20),
                                             Millis(40),  Millis(80),
                                             Millis(160), Millis(160)};
  for (size_t r = 0; r < expected.size(); ++r) {
    RunUntilRounds(&sim, &f, static_cast<int>(r) + 1);
    EXPECT_EQ(f.ctx.recovery()->CurrentDelay(kLearner), expected[r])
        << "after round " << (r + 1);
  }

  // Progress snaps the cadence back to the base interval.
  f.ctx.recovery()->OnProgress(kLearner, 4);
  const int rounds = f.ctx.recovery()->RoundsFor(kLearner);
  RunUntilRounds(&sim, &f, rounds + 1);
  EXPECT_EQ(f.ctx.recovery()->CurrentDelay(kLearner), Millis(10));
}

TEST(RecoveryStmTest, CompactedTailStagesSnapshotWithoutDoubleSend) {
  sim::Simulator sim(7);
  Fixture f(&sim, /*log_entries=*/50);
  f.ctx.core().snapshot_index = 30;
  f.ctx.core().snapshot_term = 1;
  f.ctx.core().snapshot_data = "snap";
  ASSERT_TRUE(f.ctx.log().CompactPrefix(30).ok());
  f.ctx.recovery()->StartRecovery(kLearner);

  // The learner's next needed entry (1) was compacted away: snapshot
  // stage. Repeated rounds (e.g. spanning a learner crash mid-install)
  // re-enter the stage but the in-flight guard never double-sends.
  RunUntilRounds(&sim, &f, 4);
  EXPECT_EQ(f.ctx.recovery()->StageOf(kLearner), RecoveryStm::Stage::kSnapshot);
  int installs = 0;
  for (const auto& m : f.ctx.sent) {
    if (m.to == kLearner && m.payload.Get<InstallSnapshotRequest>() != nullptr) {
      ++installs;
    }
  }
  EXPECT_EQ(installs, 1);

  // The install landed (durable prefix = snapshot index): tail reads resume.
  f.ctx.recovery()->OnProgress(kLearner, 30);
  const int rounds = f.ctx.recovery()->RoundsFor(kLearner);
  RunUntilRounds(&sim, &f, rounds + 1);
  EXPECT_EQ(f.ctx.recovery()->StageOf(kLearner), RecoveryStm::Stage::kLogTail);
  EXPECT_LE(f.MaxIndexSent(), 34);  // Throttle window above the snapshot.
}

TEST(RecoveryStmTest, PromotesOnlyWithinBoundedContiguousLag) {
  sim::Simulator sim(7);
  Fixture f(&sim, /*log_entries=*/100);
  f.ctx.recovery()->StartRecovery(kLearner);

  // 17 behind (> promotion_lag 16): still a learner. This is the
  // WEAK_ACCEPT x learner-lag guard — the reported prefix is the
  // *contiguous* durable frontier, never the sliding-window high-water
  // mark, so window holes cannot fake eligibility.
  f.ctx.recovery()->OnProgress(kLearner, 83);
  RunUntilRounds(&sim, &f, f.ctx.recovery()->RoundsFor(kLearner) + 2);
  EXPECT_TRUE(f.ctx.membership()->IsLearner(kLearner));
  EXPECT_EQ(f.ctx.stats().learners_promoted, 0u);

  // 16 behind: caught up — auto-promotion proposes the joint change and
  // recovery hands the learner to ordinary replication.
  f.ctx.recovery()->OnProgress(kLearner, 84);
  for (int i = 0; i < 1000 && f.ctx.recovery()->Tracking(kLearner); ++i) {
    sim.RunUntil(sim.Now() + Millis(5));
  }
  EXPECT_FALSE(f.ctx.recovery()->Tracking(kLearner));
  EXPECT_TRUE(f.ctx.membership()->config().joint());
  EXPECT_TRUE(f.ctx.membership()->IsVoter(kLearner));
  EXPECT_EQ(f.ctx.stats().learners_promoted, 1u);
}

TEST(RecoveryStmTest, RecoveryIsLeaderOnlyState) {
  sim::Simulator sim(7);
  Fixture f(&sim, /*log_entries=*/100);
  f.ctx.recovery()->StartRecovery(kLearner);
  RunUntilRounds(&sim, &f, 1);

  // Deposed: pending round timers die on the role guard.
  f.ctx.core().role = Role::kFollower;
  const int rounds = f.ctx.recovery()->RoundsFor(kLearner);
  sim.RunUntil(sim.Now() + Millis(500));
  EXPECT_EQ(f.ctx.recovery()->RoundsFor(kLearner), rounds);

  // Crash/step-down bookkeeping wipes the tracked set so a later
  // re-election can resume from scratch.
  f.ctx.recovery()->StopAll();
  EXPECT_FALSE(f.ctx.recovery()->Tracking(kLearner));
  EXPECT_EQ(f.ctx.recovery()->StageOf(kLearner), RecoveryStm::Stage::kIdle);

  // A non-leader cannot start recovery at all.
  f.ctx.recovery()->StartRecovery(kLearner);
  EXPECT_FALSE(f.ctx.recovery()->Tracking(kLearner));
}

}  // namespace
}  // namespace nbraft::raft
