#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "tests/raft/mock_node_context.h"

namespace nbraft::raft {
namespace {

using raft_test::MockNodeContext;

RaftOptions PipelineOptions(int dispatchers, int max_batch, int window) {
  RaftOptions options;
  options.dispatchers_per_follower = dispatchers;
  options.max_batch_entries = max_batch;
  options.window_size = window;
  options.rpc_timeout = Millis(100);
  return options;
}

AppendEntriesResponse StrongResponse(uint64_t rpc_id,
                                     storage::LogIndex last_index,
                                     storage::Term last_term) {
  AppendEntriesResponse resp;
  resp.term = 1;
  resp.from = 2;
  resp.rpc_id = rpc_id;
  resp.state = AcceptState::kStrongAccept;
  resp.entry_index = last_index;
  resp.last_index = last_index;
  resp.last_term = last_term;
  return resp;
}

TEST(ReplicationPipelineTest, DispatcherCapHoldsQueueAndFreedSlotDrainsIt) {
  sim::Simulator sim(1);
  MockNodeContext ctx(&sim, /*id=*/1, {2}, PipelineOptions(2, 1, 0));
  ctx.MakeLeader(1);
  ctx.FillLog(5, 1);

  for (storage::LogIndex i = 1; i <= 5; ++i) {
    ctx.pipeline()->EnqueueForPeer(2, i);
  }
  auto appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 2u);  // Both dispatchers busy, rest queued.
  EXPECT_EQ(appends[0].entry.index, 1);
  EXPECT_EQ(appends[1].entry.index, 2);
  EXPECT_EQ(ctx.pipeline()->DispatcherQueueDepth(), 3u);
  EXPECT_EQ(ctx.pipeline()->OutstandingRpcCount(), 2u);

  ctx.pipeline()->HandleAppendResponse(StrongResponse(appends[0].rpc_id, 1, 1));
  appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 3u);  // The freed slot picked up the next index.
  EXPECT_EQ(appends[2].entry.index, 3);
}

TEST(ReplicationPipelineTest, TimeoutRecyclingDispatchesMinIndexFirst) {
  sim::Simulator sim(1);
  MockNodeContext ctx(&sim, /*id=*/1, {2}, PipelineOptions(1, 1, 0));
  ctx.MakeLeader(1);
  ctx.FillLog(5, 1);

  // Index 5 grabs the only dispatcher; 2 and 3 queue behind it.
  ctx.pipeline()->EnqueueForPeer(2, 5);
  ctx.pipeline()->EnqueueForPeer(2, 2);
  ctx.pipeline()->EnqueueForPeer(2, 3);
  ASSERT_EQ(ctx.SentOfType<AppendEntriesRequest>().size(), 1u);

  // The RPC times out: 5 is requeued at the queue front, but the freed
  // slot must pick the minimum queued index (2), not the recycled 5 —
  // otherwise an out-of-window entry can starve the catch-up entries the
  // follower actually needs.
  sim.RunUntil(Millis(150));
  auto appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 2u);
  EXPECT_EQ(appends[1].entry.index, 2);
  EXPECT_EQ(ctx.stats().rpc_timeouts, 1u);

  ctx.pipeline()->HandleAppendResponse(StrongResponse(appends[1].rpc_id, 2, 1));
  appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 3u);
  EXPECT_EQ(appends[2].entry.index, 3);

  ctx.pipeline()->HandleAppendResponse(StrongResponse(appends[2].rpc_id, 3, 1));
  appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 4u);
  EXPECT_EQ(appends[3].entry.index, 5);
}

TEST(ReplicationPipelineTest, BatchAssemblyCoalescesConsecutiveRun) {
  sim::Simulator sim(1);
  MockNodeContext ctx(&sim, /*id=*/1, {2}, PipelineOptions(1, 4, 0));
  ctx.MakeLeader(1);
  ctx.FillLog(6, 1);

  ctx.pipeline()->EnqueueForPeer(2, 1);  // Dispatches alone (queue empty).
  for (storage::LogIndex i = 2; i <= 6; ++i) {
    ctx.pipeline()->EnqueueForPeer(2, i);
  }
  auto appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 1u);
  EXPECT_TRUE(appends[0].extra_entries.empty());

  // Freed slot drains the consecutive run 2..5 as ONE RPC (cap 4).
  ctx.pipeline()->HandleAppendResponse(StrongResponse(appends[0].rpc_id, 1, 1));
  appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 2u);
  EXPECT_EQ(appends[1].entry.index, 2);
  ASSERT_EQ(appends[1].extra_entries.size(), 3u);
  EXPECT_EQ(appends[1].extra_entries[0].index, 3);
  EXPECT_EQ(appends[1].extra_entries[2].index, 5);
  EXPECT_EQ(ctx.stats().batched_rpcs, 1u);
  EXPECT_EQ(ctx.stats().append_entries_sent, 5u);
  EXPECT_EQ(ctx.stats().append_rpcs_sent, 2u);

  // The leftover (6) goes out single once the batch is acked.
  ctx.pipeline()->HandleAppendResponse(StrongResponse(appends[1].rpc_id, 5, 1));
  appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 3u);
  EXPECT_EQ(appends[2].entry.index, 6);
  EXPECT_TRUE(appends[2].extra_entries.empty());
}

TEST(ReplicationPipelineTest, BatchNeverReachesPastFollowerWindow) {
  sim::Simulator sim(1);
  MockNodeContext ctx(&sim, /*id=*/1, {2},
                      PipelineOptions(1, /*max_batch=*/16, /*window=*/4));
  ctx.MakeLeader(1);
  ctx.FillLog(8, 1);

  for (storage::LogIndex i = 1; i <= 8; ++i) {
    ctx.pipeline()->EnqueueForPeer(2, i);
  }
  auto appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 1u);

  // The follower reports log end 1 via a heartbeat ack.
  AppendEntriesResponse hb;
  hb.term = 1;
  hb.from = 2;
  hb.rpc_id = 0;
  hb.state = AcceptState::kStrongAccept;
  hb.is_heartbeat = true;
  hb.last_index = 1;
  hb.last_term = 1;
  ctx.pipeline()->HandleAppendResponse(hb);

  // Freed slot: the batch may cover 2..5 at most (last_reported 1 +
  // window 4) even though 2..8 are all queued and the cap is 16 —
  // anything further would land in the follower's blocking held loop.
  ctx.pipeline()->HandleAppendResponse(StrongResponse(appends[0].rpc_id, 1, 1));
  appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 2u);
  EXPECT_EQ(appends[1].entry.index, 2);
  EXPECT_EQ(appends[1].extra_entries.size(), 3u);  // 3, 4, 5.
  EXPECT_EQ(ctx.pipeline()->DispatcherQueueDepth(), 3u);  // 6, 7, 8 wait.
}

TEST(ReplicationPipelineTest, BatchOfOneIsTheUnbatchedWireForm) {
  sim::Simulator sim(1);
  MockNodeContext ctx(&sim, /*id=*/1, {2}, PipelineOptions(1, 1, 0));
  ctx.MakeLeader(1);
  ctx.FillLog(4, 1);

  for (storage::LogIndex i = 1; i <= 4; ++i) {
    ctx.pipeline()->EnqueueForPeer(2, i);
  }
  auto appends = ctx.SentOfType<AppendEntriesRequest>();
  ASSERT_EQ(appends.size(), 1u);
  ctx.pipeline()->HandleAppendResponse(StrongResponse(appends[0].rpc_id, 1, 1));

  for (const auto& req : ctx.SentOfType<AppendEntriesRequest>()) {
    EXPECT_TRUE(req.extra_entries.empty());
  }
  EXPECT_EQ(ctx.stats().batched_rpcs, 0u);
}

TEST(ReplicationPipelineTest, ResetLeaderStateDropsEverything) {
  sim::Simulator sim(1);
  MockNodeContext ctx(&sim, /*id=*/1, {2, 3}, PipelineOptions(1, 1, 0));
  ctx.MakeLeader(1);
  ctx.FillLog(4, 1);
  for (storage::LogIndex i = 1; i <= 4; ++i) {
    ctx.pipeline()->EnqueueForPeer(2, i);
    ctx.pipeline()->EnqueueForPeer(3, i);
  }
  ASSERT_GT(ctx.pipeline()->DispatcherQueueDepth(), 0u);
  ASSERT_GT(ctx.pipeline()->OutstandingRpcCount(), 0u);

  ctx.pipeline()->ResetLeaderState();
  EXPECT_EQ(ctx.pipeline()->DispatcherQueueDepth(), 0u);
  EXPECT_EQ(ctx.pipeline()->OutstandingRpcCount(), 0u);
  EXPECT_TRUE(ctx.pipeline()->LeaderStateEmpty());

  // The cancelled RPC timeouts must not fire afterwards.
  const uint64_t timeouts_before = ctx.stats().rpc_timeouts;
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(ctx.stats().rpc_timeouts, timeouts_before);
}

}  // namespace
}  // namespace nbraft::raft
