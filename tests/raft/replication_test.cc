#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using raft_test::SmallConfig;

class ReplicationTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ReplicationTest, ClientsCompleteRequestsAndLogsMatch) {
  Cluster cluster(SmallConfig(GetParam(), 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));

  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.requests_completed, 100u)
      << ProtocolName(GetParam());
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
}

TEST_P(ReplicationTest, CommitNeverExceedsAppendAnywhere) {
  Cluster cluster(SmallConfig(GetParam(), 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  for (int round = 0; round < 5; ++round) {
    cluster.RunFor(Millis(200));
    for (int i = 0; i < cluster.num_nodes(); ++i) {
      RaftNode* n = cluster.node(i);
      EXPECT_LE(n->commit_index(), n->log().LastIndex());
      EXPECT_LE(n->applied_index(), n->commit_index());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ReplicationTest,
    ::testing::Values(Protocol::kRaft, Protocol::kNbRaft, Protocol::kCRaft,
                      Protocol::kNbCRaft, Protocol::kECRaft, Protocol::kKRaft,
                      Protocol::kVGRaft),
    [](const ::testing::TestParamInfo<Protocol>& info) {
      std::string name(ProtocolName(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(ReplicationDetailTest, FollowersConvergeToLeaderLog) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 4));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(1));  // Drain.

  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 0; i < 3; ++i) {
    RaftNode* n = cluster.node(i);
    EXPECT_EQ(n->log().LastIndex(), leader->log().LastIndex())
        << "node " << i << " lags";
    EXPECT_EQ(n->commit_index(), leader->commit_index());
  }
}

TEST(ReplicationDetailTest, StateMachinesApplyIdenticalData) {
  harness::ClusterConfig config = SmallConfig(Protocol::kRaft, 3, 2);
  config.workload.series_count = 5;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  cluster.StopAllClients();
  cluster.RunFor(Seconds(1));

  const auto& leader_sm = static_cast<const tsdb::TsdbStateMachine&>(
      cluster.leader()->state_machine());
  EXPECT_GT(leader_sm.ingested_points(), 0u);
  for (int i = 0; i < 3; ++i) {
    const auto& sm = static_cast<const tsdb::TsdbStateMachine&>(
        cluster.node(i)->state_machine());
    EXPECT_EQ(sm.ingested_points(), leader_sm.ingested_points())
        << "node " << i;
    for (uint64_t series = 0; series < 5; ++series) {
      EXPECT_EQ(sm.PointCount(series), leader_sm.PointCount(series))
          << "node " << i << " series " << series;
    }
  }
}

TEST(ReplicationDetailTest, EntriesCarryClientAndRequestIds) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 3, 2));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(500));
  const auto& log = cluster.leader()->log();
  int client_entries = 0;
  for (storage::LogIndex i = log.FirstIndex(); i <= log.LastIndex(); ++i) {
    const auto& e = log.AtUnchecked(i);
    if (e.client_id != net::kInvalidNode) {
      ++client_entries;
      EXPECT_TRUE(net::IsClientId(e.client_id));
      EXPECT_NE(e.request_id, 0u);
      EXPECT_FALSE(e.payload.empty());
    }
  }
  EXPECT_GT(client_entries, 10);
}

TEST(ReplicationDetailTest, NbRaftUsesWindowAndWeakAccepts) {
  harness::ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 16);
  config.client_think = Micros(5);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_GT(stats.weak_accepts, 50u);
  EXPECT_GT(stats.window_inserts, 50u);
}

TEST(ReplicationDetailTest, PlainRaftNeverWeakAccepts) {
  harness::ClusterConfig config = SmallConfig(Protocol::kRaft, 3, 16);
  config.client_think = Micros(5);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  const harness::ClusterStats stats = cluster.Collect();
  EXPECT_EQ(stats.weak_accepts, 0u);
  EXPECT_EQ(stats.window_inserts, 0u);
}

TEST(ReplicationDetailTest, TwoNodeClusterCommits) {
  Cluster cluster(SmallConfig(Protocol::kNbRaft, 2, 2));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  EXPECT_GT(cluster.Collect().requests_completed, 50u);
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
}

TEST(ReplicationDetailTest, SingleNodeClusterCommitsAlone) {
  Cluster cluster(SmallConfig(Protocol::kRaft, 1, 2));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  EXPECT_GT(cluster.Collect().requests_completed, 50u);
  RaftNode* leader = cluster.leader();
  EXPECT_EQ(leader->commit_index(), leader->log().LastIndex());
}

TEST(ReplicationDetailTest, FollowerWaitTimeObserved) {
  harness::ClusterConfig config = SmallConfig(Protocol::kRaft, 3, 32);
  config.client_think = Micros(5);
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  const harness::ClusterStats stats = cluster.Collect();
  // Out-of-order arrivals must produce measurable t_wait(F).
  EXPECT_GT(stats.follower_wait.count(), 100u);
  EXPECT_GT(stats.follower_wait.max(), 0);
}

}  // namespace
}  // namespace nbraft::raft
