// Snapshotting and log compaction: state-machine snapshots round-trip,
// leaders compact applied prefixes, and lagging followers catch up via
// InstallSnapshot with identical state.

#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "tests/raft/test_cluster.h"
#include "tsdb/ingest_record.h"

namespace nbraft::raft {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using raft_test::SmallConfig;

// ---- State-machine snapshot round trips ----

storage::LogEntry IngestEntry(storage::LogIndex index,
                              const std::vector<tsdb::Measurement>& batch) {
  storage::LogEntry e;
  e.index = index;
  e.term = 1;
  std::string bytes;
  tsdb::EncodeIngestBatch(batch, 0, &bytes);
  e.payload = std::move(bytes);
  return e;
}

TEST(StateMachineSnapshotTest, TsdbRoundTripPreservesEverything) {
  tsdb::TsdbStateMachine::Options options;
  options.flush_threshold_points = 4;  // Force chunks AND buffered points.
  tsdb::TsdbStateMachine sm(options);
  sm.Apply(IngestEntry(1, {{1, {100, 1.0}}, {1, {200, 2.0}},
                           {2, {100, 9.0}}, {2, {150, 8.5}}}));  // Flush.
  sm.Apply(IngestEntry(2, {{1, {300, 3.0}}}));  // Stays buffered.

  const std::string snapshot = sm.Snapshot();
  tsdb::TsdbStateMachine restored;
  ASSERT_TRUE(restored.Restore(snapshot).ok());

  EXPECT_EQ(restored.applied_entries(), sm.applied_entries());
  EXPECT_EQ(restored.ingested_points(), sm.ingested_points());
  EXPECT_EQ(restored.flushed_chunks(), sm.flushed_chunks());
  for (uint64_t series : {1u, 2u}) {
    auto original = sm.Query(series);
    auto copy = restored.Query(series);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(copy.ok());
    EXPECT_EQ(original.value(), copy.value()) << "series " << series;
  }
}

TEST(StateMachineSnapshotTest, TsdbRejectsCorruptSnapshot) {
  tsdb::TsdbStateMachine sm;
  sm.Apply(IngestEntry(1, {{1, {100, 1.0}}}));
  std::string snapshot = sm.Snapshot();
  snapshot[snapshot.size() / 2] ^= 0x01;
  tsdb::TsdbStateMachine other;
  EXPECT_FALSE(other.Restore(snapshot).ok());
}

TEST(StateMachineSnapshotTest, TsdbRejectsTruncatedSnapshot) {
  tsdb::TsdbStateMachine sm;
  sm.Apply(IngestEntry(1, {{1, {100, 1.0}}}));
  const std::string snapshot = sm.Snapshot();
  tsdb::TsdbStateMachine other;
  EXPECT_FALSE(other.Restore(snapshot.substr(0, 3)).ok());
  EXPECT_FALSE(other.Restore("").ok());
}

TEST(StateMachineSnapshotTest, FileStoreRoundTrip) {
  tsdb::FileStoreStateMachine sm;
  storage::LogEntry e;
  e.payload = std::string(1000, 'x');
  sm.Apply(e);
  tsdb::FileStoreStateMachine restored;
  ASSERT_TRUE(restored.Restore(sm.Snapshot()).ok());
  EXPECT_EQ(restored.applied_entries(), 1u);
  EXPECT_EQ(restored.bytes_written(), 1000u);
}

// ---- Cluster-level compaction + InstallSnapshot ----

ClusterConfig SnapshotConfig(uint64_t seed) {
  ClusterConfig config = SmallConfig(Protocol::kNbRaft, 3, 4, seed);
  config.snapshot_threshold = 200;
  config.snapshot_keep_tail = 32;
  return config;
}

TEST(SnapshotClusterTest, NoThresholdMeansNoCompaction) {
  ClusterConfig config = SnapshotConfig(51);
  config.snapshot_threshold = 0;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  EXPECT_EQ(cluster.leader()->log().FirstIndex(), 1);
  EXPECT_EQ(cluster.leader()->stats().snapshots_taken, 0u);
}

TEST(SnapshotClusterTest, NodesCompactAppliedPrefixes) {
  Cluster cluster(SnapshotConfig(52));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));

  RaftNode* leader = cluster.leader();
  EXPECT_GT(leader->stats().snapshots_taken, 0u);
  EXPECT_GT(leader->log().FirstIndex(), 1);
  // The compacted log stays bounded near threshold + keep_tail.
  EXPECT_LT(leader->log().Size(), 200 + 32 + 512);
  // Replication keeps working across compaction.
  EXPECT_GT(cluster.Collect().requests_completed, 100u);
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
}

TEST(SnapshotClusterTest, LaggingFollowerCatchesUpViaInstallSnapshot) {
  Cluster cluster(SnapshotConfig(53));
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Millis(300));

  // Crash a follower, let the cluster run far past the snapshot point.
  int victim = -1;
  for (int i = 0; i < 3; ++i) {
    if (cluster.node(i)->role() != Role::kLeader) {
      victim = i;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  cluster.CrashNode(victim);
  cluster.RunFor(Seconds(2));

  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  ASSERT_GT(leader->log().FirstIndex(),
            cluster.node(victim)->log().LastIndex() + 1)
      << "precondition: the entries the victim needs must be compacted";

  cluster.RestartNode(victim);
  cluster.StopAllClients();
  cluster.RunFor(Seconds(4));

  RaftNode* restored = cluster.node(victim);
  EXPECT_GT(restored->stats().snapshots_installed, 0u)
      << "catch-up must have used InstallSnapshot";
  EXPECT_GT(leader->stats().snapshots_sent, 0u);
  EXPECT_GE(restored->log().LastIndex(), leader->commit_index() - 1);

  // The restored state machine agrees with the leader's.
  cluster.RunFor(Seconds(1));
  for (uint64_t series = 0; series < 5; ++series) {
    EXPECT_EQ(restored->state_machine().PointCount(series),
              leader->state_machine().PointCount(series))
        << "series " << series;
  }
  EXPECT_TRUE(cluster.CheckLogMatching().ok());
  EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
}

TEST(SnapshotClusterTest, SafetyHoldsWithAggressiveCompaction) {
  ClusterConfig config = SnapshotConfig(54);
  config.snapshot_threshold = 50;
  config.snapshot_keep_tail = 8;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  for (int round = 0; round < 4; ++round) {
    cluster.RunFor(Millis(400));
    EXPECT_TRUE(cluster.CheckLogMatching().ok());
    EXPECT_TRUE(cluster.CheckCommittedPrefixes().ok());
  }
  EXPECT_GT(cluster.Collect().requests_completed, 100u);
}

TEST(SnapshotClusterTest, CRaftSkipsSnapshotting) {
  ClusterConfig config = SnapshotConfig(55);
  config.protocol = Protocol::kCRaft;
  Cluster cluster(config);
  cluster.Start();
  ASSERT_TRUE(cluster.AwaitLeader());
  cluster.StartClients();
  cluster.RunFor(Seconds(1));
  // Fragment replicas cannot produce meaningful snapshots.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.node(i)->stats().snapshots_taken, 0u);
  }
}

}  // namespace
}  // namespace nbraft::raft
