#ifndef NBRAFT_TESTS_RAFT_TEST_CLUSTER_H_
#define NBRAFT_TESTS_RAFT_TEST_CLUSTER_H_

#include "harness/cluster.h"
#include "raft/types.h"

namespace nbraft::raft_test {

/// A small, fast cluster configuration for protocol tests: tiny payloads,
/// few clients, payloads kept (tests inspect them).
inline harness::ClusterConfig SmallConfig(
    raft::Protocol protocol = raft::Protocol::kRaft, int nodes = 3,
    int clients = 4, uint64_t seed = 42) {
  harness::ClusterConfig config;
  config.num_nodes = nodes;
  config.num_clients = clients;
  config.protocol = protocol;
  config.payload_size = 512;
  config.client_think = Micros(50);
  config.election_timeout = Millis(300);
  config.seed = seed;
  config.release_payloads = false;
  config.workload.series_count = 50;
  return config;
}

}  // namespace nbraft::raft_test

#endif  // NBRAFT_TESTS_RAFT_TEST_CLUSTER_H_
