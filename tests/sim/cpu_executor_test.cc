#include "sim/cpu_executor.h"

#include <gtest/gtest.h>

#include <vector>

namespace nbraft::sim {
namespace {

TEST(CpuExecutorTest, SingleLaneSerializes) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 1, "test");
  std::vector<SimTime> done;
  cpu.Submit(Micros(10), [&] { done.push_back(sim.Now()); });
  cpu.Submit(Micros(10), [&] { done.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], Micros(10));
  EXPECT_EQ(done[1], Micros(20));
}

TEST(CpuExecutorTest, MultipleLanesRunInParallel) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 4, "test");
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(Micros(10), [&] { done.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  for (SimTime t : done) EXPECT_EQ(t, Micros(10));
}

TEST(CpuExecutorTest, FifthTaskQueuesBehindFourLanes) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 4, "test");
  SimTime fifth_done = 0;
  for (int i = 0; i < 4; ++i) cpu.Submit(Micros(10), [] {});
  cpu.Submit(Micros(10), [&] { fifth_done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fifth_done, Micros(20));
  EXPECT_EQ(cpu.queue_time(), Micros(10));
}

TEST(CpuExecutorTest, ZeroAndNegativeCosts) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 1, "test");
  SimTime t1 = -1;
  SimTime t2 = -1;
  cpu.Submit(0, [&] { t1 = sim.Now(); });
  cpu.Submit(-100, [&] { t2 = sim.Now(); });
  sim.Run();
  EXPECT_EQ(t1, 0);
  EXPECT_EQ(t2, 0);
}

TEST(CpuExecutorTest, SpeedFactorScalesCost) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 1, "test");
  cpu.set_speed_factor(2.0);  // Twice as fast.
  SimTime done = 0;
  cpu.Submit(Micros(10), [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, Micros(5));
}

TEST(CpuExecutorTest, SlowFactorScalesUp) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 1, "test");
  cpu.set_speed_factor(0.5);  // CPU-Turbo disabled.
  SimTime done = 0;
  cpu.Submit(Micros(10), [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, Micros(20));
}

TEST(CpuExecutorTest, BusyTimeAccumulates) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 2, "test");
  cpu.Submit(Micros(3), [] {});
  cpu.Submit(Micros(4), [] {});
  sim.Run();
  EXPECT_EQ(cpu.busy_time(), Micros(7));
  EXPECT_EQ(cpu.tasks_submitted(), 2u);
}

TEST(CpuExecutorTest, OutstandingTracksInFlight) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 2, "test");
  cpu.Submit(Micros(10), [] {});
  cpu.Submit(Micros(20), [] {});
  EXPECT_EQ(cpu.outstanding(), 2);
  sim.RunUntil(Micros(15));
  EXPECT_EQ(cpu.outstanding(), 1);
  sim.Run();
  EXPECT_EQ(cpu.outstanding(), 0);
}

TEST(CpuExecutorTest, SwitchCostAddsContentionOverhead) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 1, "test");
  cpu.set_switch_cost(Micros(1), Micros(100));
  SimTime first = 0;
  SimTime second = 0;
  cpu.Submit(Micros(10), [&] { first = sim.Now(); });   // No backlog.
  cpu.Submit(Micros(10), [&] { second = sim.Now(); });  // 1 outstanding.
  sim.Run();
  EXPECT_EQ(first, Micros(10));
  // Second task pays log2(1 + 1) * 1us = 1us of contention.
  EXPECT_EQ(second, Micros(21));
}

TEST(CpuExecutorTest, SwitchCostSaturatesAtCap) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 1, "test");
  cpu.set_switch_cost(Micros(10), Micros(5));
  for (int i = 0; i < 200; ++i) cpu.Submit(Micros(1), [] {});
  SimTime last = 0;
  cpu.Submit(Micros(1), [&] { last = sim.Now(); });
  sim.Run();
  // Each task pays at most 1us base + 5us cap.
  EXPECT_LE(last, Micros(201 * 6));
}

TEST(CpuExecutorTest, EarliestStartReflectsBusyLanes) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 2, "test");
  EXPECT_EQ(cpu.EarliestStart(), 0);
  cpu.Submit(Micros(10), [] {});
  EXPECT_EQ(cpu.EarliestStart(), 0);  // Second lane free.
  cpu.Submit(Micros(20), [] {});
  EXPECT_EQ(cpu.EarliestStart(), Micros(10));
}

TEST(CpuExecutorTest, ConsumeDelaysLaterWork) {
  Simulator sim(1);
  CpuExecutor cpu(&sim, 1, "test");
  cpu.Consume(Micros(50));
  SimTime done = 0;
  cpu.Submit(Micros(1), [&] { done = sim.Now(); });
  sim.Run();
  EXPECT_EQ(done, Micros(51));
}

}  // namespace
}  // namespace nbraft::sim
