#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace nbraft::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim(1);
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.At(Millis(30), [&] { order.push_back(3); });
  sim.At(Millis(10), [&] { order.push_back(1); });
  sim.At(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(30));
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, AfterSchedulesRelative) {
  Simulator sim(1);
  sim.At(Millis(10), [&] {
    sim.After(Millis(5), [&] { EXPECT_EQ(sim.Now(), Millis(15)); });
  });
  sim.Run();
  EXPECT_EQ(sim.Now(), Millis(15));
}

TEST(SimulatorTest, PastTimesClampToNow) {
  Simulator sim(1);
  sim.At(Millis(10), [&] {
    sim.At(Millis(1), [&] { EXPECT_EQ(sim.Now(), Millis(10)); });
  });
  sim.Run();
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim(1);
  bool fired = false;
  sim.After(-100, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim(1);
  bool fired = false;
  const EventId id = sim.At(Millis(1), [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator sim(1);
  sim.Cancel(9999);
  sim.Cancel(kInvalidEventId);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, CancelFromInsideEvent) {
  Simulator sim(1);
  bool fired = false;
  const EventId victim = sim.At(Millis(2), [&] { fired = true; });
  sim.At(Millis(1), [&] { sim.Cancel(victim); });
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim(1);
  std::vector<int> fired;
  sim.At(Millis(10), [&] { fired.push_back(10); });
  sim.At(Millis(20), [&] { fired.push_back(20); });
  sim.At(Millis(30), [&] { fired.push_back(30); });
  sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(sim.Now(), Millis(20));
  sim.RunUntil(Millis(100));
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(sim.Now(), Millis(100));
}

TEST(SimulatorTest, RunUntilAdvancesTimeWithoutEvents) {
  Simulator sim(1);
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), Seconds(5));
}

TEST(SimulatorTest, StepReturnsFalseWhenEmpty) {
  Simulator sim(1);
  EXPECT_FALSE(sim.Step());
  sim.At(0, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, RunWithEventLimit) {
  Simulator sim(1);
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.At(i, [&] { ++count; });
  sim.Run(3);
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim(1);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.After(Micros(1), chain);
  };
  sim.After(0, chain);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), Micros(99));
}

TEST(SimulatorTest, RngIsDeterministicPerSeed) {
  Simulator a(42);
  Simulator b(42);
  EXPECT_EQ(a.rng()->Next(), b.rng()->Next());
}

TEST(SimulatorTest, CancelAlreadyFiredIdIsNoop) {
  Simulator sim(1);
  int fired = 0;
  const EventId id = sim.At(Millis(1), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Cancel(id);  // Stale: the event already fired.
  // The slot is free now; a new event that reuses it must be unaffected
  // by cancels addressed to the old generation.
  bool second = false;
  sim.At(Millis(2), [&] { second = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_TRUE(second);
}

TEST(SimulatorTest, DoubleCancelIsNoop) {
  Simulator sim(1);
  bool fired = false;
  const EventId id = sim.At(Millis(1), [&] { fired = true; });
  sim.Cancel(id);
  sim.Cancel(id);  // Second cancel must not free the slot twice.
  // Two fresh events exercise the free list after the double cancel.
  int count = 0;
  sim.At(Millis(2), [&] { ++count; });
  sim.At(Millis(3), [&] { ++count; });
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, CancelOwnIdFromInsideCallbackIsNoop) {
  Simulator sim(1);
  EventId self = kInvalidEventId;
  bool fired = false;
  self = sim.At(Millis(1), [&] {
    fired = true;
    sim.Cancel(self);  // Already running: must be a no-op, not a corruption.
  });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.events_processed(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CallbackCanScheduleIntoItsOwnRetiredSlot) {
  Simulator sim(1);
  // The firing event's slot is retired before the callback runs, so a
  // reschedule from inside the callback may reuse that very slot. The new
  // event must be distinct and cancellable independently.
  std::vector<EventId> ids;
  bool relay = false;
  ids.push_back(sim.At(Millis(1), [&] {
    ids.push_back(sim.After(Millis(1), [&] { relay = true; }));
  }));
  sim.Run();
  EXPECT_TRUE(relay);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
}

TEST(SimulatorTest, PendingEventsTracksScheduleCancelAndFire) {
  Simulator sim(1);
  EXPECT_EQ(sim.pending_events(), 0u);
  const EventId a = sim.At(Millis(1), [] {});
  sim.At(Millis(2), [] {});
  const EventId c = sim.At(Millis(3), [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(c);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(SimulatorTest, ManyCancelledHeadsDoNotStallRunUntil) {
  Simulator sim(1);
  // A pile of cancelled events at the head of the queue must be reaped
  // lazily without firing or advancing time past the boundary.
  std::vector<EventId> ids;
  ids.reserve(100);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.At(Millis(1), [&] { ++fired; }));
  }
  sim.At(Millis(2), [&] { fired += 1000; });
  for (const EventId id : ids) sim.Cancel(id);
  sim.RunUntil(Millis(1));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.Now(), Millis(1));
  sim.RunUntil(Millis(2));
  EXPECT_EQ(fired, 1000);
}

TEST(SimulatorTest, ProcessedCountsFiredEventsOnly) {
  Simulator sim(1);
  const EventId id = sim.At(1, [] {});
  sim.At(2, [] {});
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 1u);
}

}  // namespace
}  // namespace nbraft::sim
