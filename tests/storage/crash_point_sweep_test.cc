// Crash-point sweep: a DurableLog stream exercising every record kind is
// truncated at EVERY byte offset, simulating a power cut at that exact
// point of the file. Recovery must never fail, must recover exactly the
// complete records below the cut (never resurrecting anything above it),
// and must report the torn-tail byte count precisely.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "storage/durable_log.h"
#include "storage/log_entry.h"

namespace nbraft::storage {
namespace {

namespace fs = std::filesystem;

class CrashPointSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag =
        std::to_string(reinterpret_cast<uintptr_t>(this));
    full_ = fs::temp_directory_path() / ("crash_sweep_full_" + tag + ".wal");
    cut_ = fs::temp_directory_path() / ("crash_sweep_cut_" + tag + ".wal");
    fs::remove(full_);
    fs::remove(cut_);
  }
  void TearDown() override {
    fs::remove(full_);
    fs::remove(cut_);
  }

  fs::path full_;
  fs::path cut_;
};

TEST_F(CrashPointSweepTest, RecoveryTolerantAtEveryByteOffset) {
  // Build the stream, flushing after each record so the on-disk size marks
  // the record boundary. boundaries[k] = byte offset after k records.
  std::vector<size_t> boundaries = {0};
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(full_.string()).ok());
    const auto mark = [&]() {
      dl.Sync([](Status s) { EXPECT_TRUE(s.ok()); });
      boundaries.push_back(static_cast<size_t>(fs::file_size(full_)));
    };
    ASSERT_TRUE(dl.AppendHardState({1, 0}).ok());
    mark();
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(dl.AppendEntry(MakeEntry(i, 1, i == 1 ? 0 : 1,
                                           "payload-" + std::to_string(i)))
                      .ok());
      mark();
    }
    ASSERT_TRUE(dl.AppendTruncate(4).ok());
    mark();
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(4, 2, 1, "replacement")).ok());
    mark();
    ASSERT_TRUE(dl.AppendSnapshot(2, 1, nbraft::Buffer(std::string("snap")),
                                  /*installed=*/false)
                    .ok());
    mark();
    ASSERT_TRUE(dl.AppendCompact(2).ok());
    mark();
    ASSERT_TRUE(dl.AppendHardState({2, net::kInvalidNode}).ok());
    mark();
    ASSERT_TRUE(dl.Close().ok());
  }
  const size_t total = boundaries.back();
  ASSERT_EQ(total, fs::file_size(full_));
  ASSERT_EQ(boundaries.size(), 11u);  // 10 records + offset zero.

  std::ifstream in(full_, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), total);

  for (size_t len = 0; len <= total; ++len) {
    {
      std::ofstream out(cut_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    auto recovered = DurableLog::Recover(cut_.string());
    ASSERT_TRUE(recovered.ok()) << "recover failed at offset " << len;

    // Exactly the records whose end sits at or below the cut survive.
    size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= len) {
      ++complete;
    }
    EXPECT_EQ(recovered->records, complete) << "at offset " << len;
    EXPECT_EQ(recovered->truncated_tail_bytes, len - boundaries[complete])
        << "at offset " << len;

    // Fold sanity at the record boundaries the sweep passes through: the
    // log never runs ahead of what was fully written.
    EXPECT_LE(recovered->log.LastIndex(), 4) << "at offset " << len;
    if (complete >= 7) {  // Truncate + replacement record applied.
      EXPECT_EQ(recovered->log.LastIndex(), 4);
      EXPECT_EQ(recovered->log.AtUnchecked(4).term, 2);
    } else if (complete >= 5 && complete < 6) {
      EXPECT_EQ(recovered->log.LastIndex(), 4);
      EXPECT_EQ(recovered->log.AtUnchecked(4).term, 1);
    }
    EXPECT_EQ(recovered->has_snapshot, complete >= 8) << "at offset " << len;
    if (complete >= 9) {  // Compaction applied.
      EXPECT_EQ(recovered->log.FirstIndex(), 3);
    }
    EXPECT_EQ(recovered->hard_state.term, complete >= 10 ? 2 : complete >= 1 ? 1 : 0)
        << "at offset " << len;
  }

  // The uncut stream recovers the full state.
  auto final_state = DurableLog::Recover(full_.string());
  ASSERT_TRUE(final_state.ok());
  EXPECT_EQ(final_state->records, 10u);
  EXPECT_EQ(final_state->truncated_tail_bytes, 0u);
  EXPECT_EQ(final_state->log.LastIndex(), 4);
  EXPECT_EQ(final_state->log.FirstIndex(), 3);
  EXPECT_TRUE(final_state->has_snapshot);
  EXPECT_EQ(final_state->snapshot_index, 2);
  EXPECT_EQ(final_state->snapshot_data.str(), "snap");
  EXPECT_EQ(final_state->hard_state.term, 2);
  EXPECT_EQ(final_state->hard_state.voted_for, net::kInvalidNode);
}

}  // namespace
}  // namespace nbraft::storage
