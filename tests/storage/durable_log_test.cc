#include "storage/durable_log.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace nbraft::storage {
namespace {

class DurableLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("durable_log_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".wal");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(DurableLogTest, AppendAndRecoverEntries) {
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(path_.string()).ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(
          dl.AppendEntry(MakeEntry(i, 1, i == 1 ? 0 : 1, "payload")).ok());
    }
    ASSERT_TRUE(dl.Close().ok());
  }
  auto recovered = DurableLog::Recover(path_.string());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->log.LastIndex(), 5);
  EXPECT_EQ(recovered->log.AtUnchecked(3).payload, "payload");
  EXPECT_EQ(recovered->hard_state.term, 0);
  EXPECT_EQ(recovered->records, 5u);
}

TEST_F(DurableLogTest, TruncationReplays) {
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(path_.string()).ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(dl.AppendEntry(MakeEntry(i, 1, i == 1 ? 0 : 1)).ok());
    }
    ASSERT_TRUE(dl.AppendTruncate(4).ok());
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(4, 2, 1, "replacement")).ok());
    ASSERT_TRUE(dl.Close().ok());
  }
  auto recovered = DurableLog::Recover(path_.string());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->log.LastIndex(), 4);
  EXPECT_EQ(recovered->log.AtUnchecked(4).term, 2);
  EXPECT_EQ(recovered->log.AtUnchecked(4).payload, "replacement");
}

TEST_F(DurableLogTest, HardStateRecovered) {
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(path_.string()).ok());
    ASSERT_TRUE(dl.AppendHardState({3, 1}).ok());
    ASSERT_TRUE(dl.AppendHardState({7, 2}).ok());  // Latest wins.
    ASSERT_TRUE(dl.Close().ok());
  }
  auto recovered = DurableLog::Recover(path_.string());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->hard_state.term, 7);
  EXPECT_EQ(recovered->hard_state.voted_for, 2);
}

TEST_F(DurableLogTest, TornTailDropped) {
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(path_.string()).ok());
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(1, 1, 0, "keep")).ok());
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(2, 1, 1, "torn")).ok());
    ASSERT_TRUE(dl.Close().ok());
  }
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) - 3);
  auto recovered = DurableLog::Recover(path_.string());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->log.LastIndex(), 1);
  EXPECT_GT(recovered->truncated_tail_bytes, 0u);
}

TEST_F(DurableLogTest, RecoverMissingFileFails) {
  EXPECT_FALSE(DurableLog::Recover("/nonexistent/x.wal").ok());
}

TEST_F(DurableLogTest, MixedHistoryReplaysInOrder) {
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(path_.string()).ok());
    ASSERT_TRUE(dl.AppendHardState({1, 0}).ok());
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(1, 1, 0)).ok());
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(2, 1, 1)).ok());
    ASSERT_TRUE(dl.AppendHardState({2, net::kInvalidNode}).ok());
    ASSERT_TRUE(dl.AppendTruncate(2).ok());
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(2, 2, 1)).ok());
    ASSERT_TRUE(dl.Close().ok());
  }
  auto recovered = DurableLog::Recover(path_.string());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->log.LastIndex(), 2);
  EXPECT_EQ(recovered->log.LastTerm(), 2);
  EXPECT_EQ(recovered->hard_state.term, 2);
  EXPECT_EQ(recovered->hard_state.voted_for, net::kInvalidNode);
}

TEST_F(DurableLogTest, LocalSnapshotAndCompactionRecovered) {
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(path_.string()).ok());
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(dl.AppendEntry(MakeEntry(i, 1, i == 1 ? 0 : 1)).ok());
    }
    ASSERT_TRUE(dl.AppendSnapshot(4, 1, nbraft::Buffer(std::string("image")),
                                  /*installed=*/false)
                    .ok());
    ASSERT_TRUE(dl.AppendCompact(4).ok());
    ASSERT_TRUE(dl.Close().ok());
  }
  auto recovered = DurableLog::Recover(path_.string());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->has_snapshot);
  EXPECT_EQ(recovered->snapshot_index, 4);
  EXPECT_EQ(recovered->snapshot_term, 1);
  EXPECT_EQ(recovered->snapshot_data.str(), "image");
  // The compaction kept the tail: entries 5..6 remain replayable.
  EXPECT_EQ(recovered->log.FirstIndex(), 5);
  EXPECT_EQ(recovered->log.LastIndex(), 6);
}

TEST_F(DurableLogTest, InstalledSnapshotResetsLog) {
  {
    DurableLog dl;
    ASSERT_TRUE(dl.Open(path_.string()).ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(dl.AppendEntry(MakeEntry(i, 1, i == 1 ? 0 : 1)).ok());
    }
    // A leader-installed snapshot supersedes the local log entirely.
    ASSERT_TRUE(dl.AppendSnapshot(10, 2, nbraft::Buffer(std::string("inst")),
                                  /*installed=*/true)
                    .ok());
    ASSERT_TRUE(dl.AppendEntry(MakeEntry(11, 2, 2)).ok());
    ASSERT_TRUE(dl.Close().ok());
  }
  auto recovered = DurableLog::Recover(path_.string());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->has_snapshot);
  EXPECT_EQ(recovered->snapshot_index, 10);
  EXPECT_EQ(recovered->log.FirstIndex(), 11);
  EXPECT_EQ(recovered->log.LastIndex(), 11);
}

}  // namespace
}  // namespace nbraft::storage
