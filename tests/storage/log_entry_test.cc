#include "storage/log_entry.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace nbraft::storage {
namespace {

LogEntry SampleEntry() {
  LogEntry e;
  e.index = 42;
  e.term = 7;
  e.prev_term = 6;
  e.client_id = net::kClientIdBase + 3;
  e.request_id = 0xdeadbeefcafeULL;
  e.payload = "ingest-batch-payload";
  return e;
}

TEST(LogEntryTest, EncodeDecodeRoundTrip) {
  const LogEntry e = SampleEntry();
  std::string buf;
  e.EncodeTo(&buf);
  std::string_view in(buf);
  auto decoded = LogEntry::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), e);
  EXPECT_TRUE(in.empty());
}

TEST(LogEntryTest, FragmentFieldsRoundTrip) {
  LogEntry e = SampleEntry();
  e.frag_shard = 2;
  e.frag_k = 3;
  e.full_size = 4096;
  std::string buf;
  e.EncodeTo(&buf);
  std::string_view in(buf);
  auto decoded = LogEntry::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->IsFragment());
  EXPECT_EQ(decoded->frag_shard, 2);
  EXPECT_EQ(decoded->frag_k, 3u);
  EXPECT_EQ(decoded->full_size, 4096u);
}

TEST(LogEntryTest, MultipleEntriesDecodeSequentially) {
  std::string buf;
  for (int i = 1; i <= 5; ++i) {
    LogEntry e = MakeEntry(i, 1, i == 1 ? 0 : 1, "p" + std::to_string(i));
    e.EncodeTo(&buf);
  }
  std::string_view in(buf);
  for (int i = 1; i <= 5; ++i) {
    auto decoded = LogEntry::DecodeFrom(&in);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->index, i);
    EXPECT_EQ(decoded->payload, "p" + std::to_string(i));
  }
  EXPECT_TRUE(in.empty());
}

TEST(LogEntryTest, CorruptionDetectedByCrc) {
  const LogEntry e = SampleEntry();
  std::string buf;
  e.EncodeTo(&buf);
  // Flip one bit anywhere in the record body (skip the length prefix so
  // the framing still parses).
  for (size_t pos = 2; pos < buf.size(); pos += 5) {
    std::string corrupted = buf;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    std::string_view in(corrupted);
    auto decoded = LogEntry::DecodeFrom(&in);
    EXPECT_FALSE(decoded.ok()) << "flip at " << pos;
  }
}

TEST(LogEntryTest, TruncatedInputFails) {
  const LogEntry e = SampleEntry();
  std::string buf;
  e.EncodeTo(&buf);
  for (size_t keep = 0; keep < buf.size(); keep += 3) {
    std::string_view in(buf.data(), keep);
    auto decoded = LogEntry::DecodeFrom(&in);
    EXPECT_FALSE(decoded.ok()) << "kept " << keep;
  }
}

TEST(LogEntryTest, EmptyPayloadAllowed) {
  LogEntry e = MakeEntry(1, 1, 0);
  std::string buf;
  e.EncodeTo(&buf);
  std::string_view in(buf);
  auto decoded = LogEntry::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(LogEntryTest, WireSizeIncludesOverhead) {
  LogEntry e = MakeEntry(1, 1, 0, std::string(1000, 'x'));
  EXPECT_EQ(e.WireSize(), 1000 + LogEntry::kHeaderOverhead);
}

TEST(LogEntryTest, ReleasePayloadKeepsModelledSize) {
  LogEntry e = MakeEntry(1, 1, 0, std::string(2048, 'x'));
  const size_t before = e.WireSize();
  e.ReleasePayload();
  EXPECT_TRUE(e.payload.empty());
  EXPECT_EQ(e.WireSize(), before);
}

TEST(LogEntryTest, ToStringIsPaperTriple) {
  EXPECT_EQ(MakeEntry(11, 7, 6).ToString(), "(11,7,6)");
}

TEST(LogEntryTest, RandomizedRoundTripProperty) {
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    LogEntry e;
    e.index = static_cast<LogIndex>(rng.NextBounded(1u << 30));
    e.term = static_cast<Term>(rng.NextBounded(1000));
    e.prev_term = e.term - static_cast<Term>(rng.NextBounded(2));
    e.client_id = static_cast<net::NodeId>(rng.NextBounded(100000));
    e.request_id = rng.Next();
    e.payload = std::string(rng.NextBounded(500), static_cast<char>(rng.Next()));
    std::string buf;
    e.EncodeTo(&buf);
    std::string_view in(buf);
    auto decoded = LogEntry::DecodeFrom(&in);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value(), e);
  }
}

}  // namespace
}  // namespace nbraft::storage
