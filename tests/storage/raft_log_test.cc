#include "storage/raft_log.h"

#include <gtest/gtest.h>

namespace nbraft::storage {
namespace {

RaftLog LogWithEntries(int n, Term term = 1) {
  RaftLog log;
  for (int i = 1; i <= n; ++i) {
    log.Append(MakeEntry(i, term, i == 1 ? 0 : term));
  }
  return log;
}

TEST(RaftLogTest, EmptyLog) {
  RaftLog log;
  EXPECT_EQ(log.LastIndex(), 0);
  EXPECT_EQ(log.LastTerm(), 0);
  EXPECT_EQ(log.FirstIndex(), 1);
  EXPECT_TRUE(log.Empty());
  EXPECT_TRUE(log.Matches(0, 0));
  EXPECT_FALSE(log.Matches(1, 1));
}

TEST(RaftLogTest, SentinelTermAtZero) {
  RaftLog log;
  auto t = log.TermAt(0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 0);
}

TEST(RaftLogTest, AppendAdvances) {
  RaftLog log = LogWithEntries(3);
  EXPECT_EQ(log.LastIndex(), 3);
  EXPECT_EQ(log.LastTerm(), 1);
  EXPECT_EQ(log.Size(), 3);
  EXPECT_EQ(log.AtUnchecked(2).index, 2);
}

TEST(RaftLogTest, TermTransitions) {
  RaftLog log = LogWithEntries(2, 1);
  log.Append(MakeEntry(3, 2, 1));
  log.Append(MakeEntry(4, 2, 2));
  EXPECT_EQ(log.TermAt(2).value(), 1);
  EXPECT_EQ(log.TermAt(3).value(), 2);
  EXPECT_EQ(log.LastTerm(), 2);
}

TEST(RaftLogTest, OutOfRangeLookups) {
  RaftLog log = LogWithEntries(3);
  EXPECT_FALSE(log.At(0).ok());
  EXPECT_FALSE(log.At(4).ok());
  EXPECT_FALSE(log.TermAt(5).ok());
  EXPECT_TRUE(log.At(3).ok());
}

TEST(RaftLogTest, TruncateSuffixRemovesTail) {
  RaftLog log = LogWithEntries(5);
  ASSERT_TRUE(log.TruncateSuffix(3).ok());
  EXPECT_EQ(log.LastIndex(), 2);
  EXPECT_EQ(log.Size(), 2);
  // Re-append over the truncated range.
  log.Append(MakeEntry(3, 2, 1));
  EXPECT_EQ(log.LastTerm(), 2);
}

TEST(RaftLogTest, TruncateBeyondEndIsNoop) {
  RaftLog log = LogWithEntries(3);
  ASSERT_TRUE(log.TruncateSuffix(10).ok());
  EXPECT_EQ(log.LastIndex(), 3);
}

TEST(RaftLogTest, TruncateWholeLog) {
  RaftLog log = LogWithEntries(3);
  ASSERT_TRUE(log.TruncateSuffix(1).ok());
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.LastIndex(), 0);
  EXPECT_EQ(log.LastTerm(), 0);
}

TEST(RaftLogTest, CompactPrefixKeepsBoundaryTerm) {
  RaftLog log = LogWithEntries(10, 3);
  ASSERT_TRUE(log.CompactPrefix(6).ok());
  EXPECT_EQ(log.FirstIndex(), 7);
  EXPECT_EQ(log.LastIndex(), 10);
  EXPECT_FALSE(log.At(6).ok());
  // Boundary term survives compaction for consistency checks.
  EXPECT_EQ(log.TermAt(6).value(), 3);
  EXPECT_TRUE(log.Matches(6, 3));
  EXPECT_FALSE(log.Matches(6, 2));
}

TEST(RaftLogTest, CompactEverything) {
  RaftLog log = LogWithEntries(4, 2);
  ASSERT_TRUE(log.CompactPrefix(4).ok());
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.LastIndex(), 4);
  EXPECT_EQ(log.LastTerm(), 2);
  // Appending continues after the compacted prefix.
  log.Append(MakeEntry(5, 2, 2));
  EXPECT_EQ(log.LastIndex(), 5);
}

TEST(RaftLogTest, CompactBeyondEndFails) {
  RaftLog log = LogWithEntries(3);
  EXPECT_FALSE(log.CompactPrefix(7).ok());
}

TEST(RaftLogTest, TruncateIntoCompactedPrefixFails) {
  RaftLog log = LogWithEntries(5);
  ASSERT_TRUE(log.CompactPrefix(3).ok());
  EXPECT_FALSE(log.TruncateSuffix(2).ok());
}

TEST(RaftLogTest, MatchesChecksIndexAndTerm) {
  RaftLog log = LogWithEntries(3, 4);
  EXPECT_TRUE(log.Matches(2, 4));
  EXPECT_FALSE(log.Matches(2, 3));
  EXPECT_FALSE(log.Matches(9, 4));
}

TEST(RaftLogTest, PayloadBytesTracked) {
  RaftLog log;
  log.Append(MakeEntry(1, 1, 0, std::string(100, 'a')));
  log.Append(MakeEntry(2, 1, 1, std::string(50, 'b')));
  EXPECT_EQ(log.PayloadBytes(), 150u);
  ASSERT_TRUE(log.TruncateSuffix(2).ok());
  EXPECT_EQ(log.PayloadBytes(), 100u);
  log.ReleasePayloadAt(1);
  EXPECT_EQ(log.PayloadBytes(), 0u);
  // Released entry keeps its modelled wire size.
  EXPECT_EQ(log.AtUnchecked(1).WireSize(), 100 + LogEntry::kHeaderOverhead);
}

TEST(RaftLogTest, ResetToSnapshotRestartsAfterThePoint) {
  RaftLog log = LogWithEntries(5, 2);
  log.ResetToSnapshot(/*index=*/100, /*term=*/7);
  EXPECT_TRUE(log.Empty());
  EXPECT_EQ(log.FirstIndex(), 101);
  EXPECT_EQ(log.LastIndex(), 100);
  EXPECT_EQ(log.LastTerm(), 7);
  EXPECT_TRUE(log.Matches(100, 7));
  EXPECT_EQ(log.PayloadBytes(), 0u);
  // Appends continue right after the snapshot point.
  log.Append(MakeEntry(101, 7, 7));
  EXPECT_EQ(log.LastIndex(), 101);
}

TEST(RaftLogDeathTest, NonContiguousAppendAborts) {
  RaftLog log = LogWithEntries(2);
  EXPECT_DEATH(log.Append(MakeEntry(5, 1, 1)), "continuous");
}

TEST(RaftLogDeathTest, DecreasingTermAborts) {
  RaftLog log;
  log.Append(MakeEntry(1, 5, 0));
  EXPECT_DEATH(log.Append(MakeEntry(2, 4, 5)), "non-decreasing");
}

TEST(RaftLogDeathTest, WrongPrevTermAborts) {
  RaftLog log;
  log.Append(MakeEntry(1, 5, 0));
  EXPECT_DEATH(log.Append(MakeEntry(2, 6, 4)), "prev_term");
}

}  // namespace
}  // namespace nbraft::storage
