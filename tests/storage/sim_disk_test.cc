// SimDisk unit surface: the durable/volatile frontier, crash torn tails,
// virtual-time latency modeling on the I/O lane, and the seeded fault
// injector (transient write errors, fsync stalls, tail corruption and the
// repair scar).

#include "storage/sim_disk.h"

#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.h"
#include "storage/durable_log.h"
#include "storage/log_entry.h"

namespace nbraft::storage {
namespace {

class SimDiskTest : public ::testing::Test {
 protected:
  static SimDisk::Options Opts() {
    SimDisk::Options o;
    o.write_latency = Micros(10);
    o.fsync_latency = Micros(100);
    o.fault_seed = 7;
    return o;
  }

  /// Drives the barrier to completion and returns its status + finish time.
  Status SyncNow(SimDisk* disk, SimTime* done_at = nullptr) {
    Status result = Status::IoError("sync never completed");
    disk->Sync([this, &result, done_at](Status s) {
      result = s;
      if (done_at != nullptr) *done_at = sim_.Now();
    });
    sim_.RunUntil(sim_.Now() + Seconds(1));
    return result;
  }

  sim::Simulator sim_{1};
};

TEST_F(SimDiskTest, UnsyncedRecordsVanishOnCrash) {
  SimDisk disk(&sim_, Opts(), 0);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(disk.Append(MakeEntry(i, 1, i == 1 ? 0 : 1, "payload")).ok());
  }
  EXPECT_EQ(disk.durable_records(), 0u);
  disk.Crash();
  EXPECT_TRUE(disk.records().empty());
}

TEST_F(SimDiskTest, SyncedPrefixSurvivesCrash) {
  SimDisk disk(&sim_, Opts(), 0);
  ASSERT_TRUE(disk.Append(MakeEntry(1, 1, 0, "a")).ok());
  ASSERT_TRUE(disk.Append(MakeEntry(2, 1, 1, "b")).ok());
  ASSERT_TRUE(SyncNow(&disk).ok());
  EXPECT_EQ(disk.durable_records(), 2u);
  ASSERT_TRUE(disk.Append(MakeEntry(3, 1, 1, "lost")).ok());
  disk.Crash();
  ASSERT_EQ(disk.records().size(), 2u);
  EXPECT_EQ(disk.records()[1].entry.index, 2);
  // A crash with a lost record leaves a (deterministic) torn tail drawn
  // from the first lost record's size.
  EXPECT_LT(disk.torn_tail_bytes(), MakeEntry(3, 1, 1, "lost").EncodedSize());
}

TEST_F(SimDiskTest, FsyncChargesWriteAndBarrierLatency) {
  SimDisk disk(&sim_, Opts(), 0);
  ASSERT_TRUE(disk.Append(MakeEntry(1, 1, 0, "a")).ok());
  ASSERT_TRUE(disk.Append(MakeEntry(2, 1, 1, "b")).ok());
  const SimTime start = sim_.Now();
  SimTime done_at = 0;
  ASSERT_TRUE(SyncNow(&disk, &done_at).ok());
  // Two buffered writes (10us each) + the barrier (100us).
  EXPECT_GE(done_at - start, Micros(120));
  // The buffered cost was consumed: an empty follow-up barrier only pays
  // the fsync itself.
  const SimTime start2 = sim_.Now();
  ASSERT_TRUE(SyncNow(&disk, &done_at).ok());
  EXPECT_EQ(done_at - start2, Micros(100));
}

TEST_F(SimDiskTest, BandwidthChargesPerByte) {
  SimDisk::Options o = Opts();
  o.write_latency = 0;
  o.fsync_latency = 0;
  o.bytes_per_us = 1.0;  // 1 byte per microsecond: cost == encoded size.
  SimDisk disk(&sim_, o, 0);
  const LogEntry e = MakeEntry(1, 1, 0, std::string(1000, 'x'));
  ASSERT_TRUE(disk.Append(e).ok());
  const SimTime start = sim_.Now();
  SimTime done_at = 0;
  ASSERT_TRUE(SyncNow(&disk, &done_at).ok());
  EXPECT_GE(done_at - start,
            static_cast<SimDuration>(e.EncodedSize()) * kMicrosecond);
}

TEST_F(SimDiskTest, FsyncStallAddsLatencyUntilCleared) {
  SimDisk disk(&sim_, Opts(), 0);
  disk.set_fsync_stall(Millis(2));
  ASSERT_TRUE(disk.Append(MakeEntry(1, 1, 0, "a")).ok());
  const SimTime start = sim_.Now();
  SimTime done_at = 0;
  ASSERT_TRUE(SyncNow(&disk, &done_at).ok());
  EXPECT_GE(done_at - start, Millis(2));
  disk.set_fsync_stall(0);
  const SimTime start2 = sim_.Now();
  ASSERT_TRUE(SyncNow(&disk, &done_at).ok());
  EXPECT_LT(done_at - start2, Millis(1));
}

TEST_F(SimDiskTest, ArmedWriteErrorsAreTransient) {
  SimDisk disk(&sim_, Opts(), 0);
  disk.ArmWriteErrors(2);
  EXPECT_FALSE(disk.Append(MakeEntry(1, 1, 0)).ok());
  EXPECT_FALSE(disk.Append(MakeEntry(1, 1, 0)).ok());
  EXPECT_TRUE(disk.Append(MakeEntry(1, 1, 0)).ok());
  EXPECT_EQ(disk.write_errors_injected(), 2u);
}

TEST_F(SimDiskTest, InFlightSyncNeverFiresAfterCrash) {
  SimDisk disk(&sim_, Opts(), 0);
  ASSERT_TRUE(disk.Append(MakeEntry(1, 1, 0, "a")).ok());
  bool fired = false;
  disk.Sync([&fired](Status) { fired = true; });
  disk.Crash();
  sim_.RunUntil(sim_.Now() + Seconds(1));
  EXPECT_FALSE(fired);
  EXPECT_EQ(disk.durable_records(), 0u);
}

TEST_F(SimDiskTest, CorruptionCutsRecoveredStream) {
  SimDisk disk(&sim_, Opts(), 0);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(disk.Append(MakeEntry(i, 1, i == 1 ? 0 : 1, "payload")).ok());
  }
  ASSERT_TRUE(SyncNow(&disk).ok());
  ASSERT_TRUE(disk.CorruptTailRecord());
  const auto recovered = DurableLog::RecoverFromDisk(disk);
  EXPECT_GT(recovered.corrupt_dropped_records, 0u);
  EXPECT_LT(recovered.log.LastIndex(), 5);
  // The surviving prefix is exactly the records before the corrupt one.
  EXPECT_EQ(static_cast<size_t>(recovered.log.LastIndex()),
            5u - recovered.corrupt_dropped_records);
}

TEST_F(SimDiskTest, CorruptionNeverTouchesRecordsBehindAMarker) {
  SimDisk disk(&sim_, Opts(), 0);
  // Entries, then a hard-state marker (a vote), then more entries: bit rot
  // must land after the marker so recovery can never forget the vote.
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(disk.Append(MakeEntry(i, 1, i == 1 ? 0 : 1)).ok());
  }
  LogEntry vote;
  vote.index = DurableLog::kHardStateMarker;
  vote.term = 4;
  vote.client_id = 2;
  ASSERT_TRUE(disk.Append(vote).ok());
  ASSERT_TRUE(disk.Append(MakeEntry(4, 4, 1)).ok());
  ASSERT_TRUE(SyncNow(&disk).ok());
  for (int draw = 0; draw < 16; ++draw) {
    SimDisk fresh(&sim_, Opts(), draw);  // Different fault streams.
    for (size_t i = 0; i < disk.records().size(); ++i) {
      ASSERT_TRUE(fresh.Append(disk.records()[i].entry).ok());
    }
    ASSERT_TRUE(SyncNow(&fresh).ok());
    ASSERT_TRUE(fresh.CorruptTailRecord());
    const auto recovered = DurableLog::RecoverFromDisk(fresh);
    EXPECT_EQ(recovered.hard_state.term, 4);
    EXPECT_EQ(recovered.hard_state.voted_for, 2);
  }
}

TEST_F(SimDiskTest, RepairCutsImageAndLeavesScar) {
  SimDisk disk(&sim_, Opts(), 0);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(disk.Append(MakeEntry(i, 1, i == 1 ? 0 : 1)).ok());
  }
  ASSERT_TRUE(SyncNow(&disk).ok());
  ASSERT_TRUE(disk.CorruptTailRecord());
  disk.RepairCorruptTail();
  EXPECT_TRUE(disk.heal_scar());
  for (const auto& r : disk.records()) EXPECT_FALSE(r.corrupt);
  // Post-repair appends land on a clean stream and the scar survives a
  // crash (quarantine must not be forgotten by crashing mid-heal).
  const LogIndex next = disk.records().empty()
                            ? 1
                            : disk.records().back().entry.index + 1;
  const Term prev_term =
      disk.records().empty() ? 0 : disk.records().back().entry.term;
  ASSERT_TRUE(disk.Append(MakeEntry(next, 2, prev_term)).ok());
  ASSERT_TRUE(SyncNow(&disk).ok());
  disk.Crash();
  EXPECT_TRUE(disk.heal_scar());
  const auto recovered = DurableLog::RecoverFromDisk(disk);
  EXPECT_EQ(recovered.corrupt_dropped_records, 0u);
  EXPECT_EQ(recovered.log.LastIndex(), next);
  disk.ClearHealScar();
  EXPECT_FALSE(disk.heal_scar());
}

TEST_F(SimDiskTest, CompactMarkerReleasesCoveredPayloads) {
  SimDisk disk(&sim_, Opts(), 0);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(disk.Append(MakeEntry(i, 1, i == 1 ? 0 : 1, "payload")).ok());
  }
  LogEntry compact;
  compact.index = DurableLog::kCompactMarker;
  compact.term = 2;  // Compact through index 2.
  ASSERT_TRUE(disk.Append(compact).ok());
  EXPECT_TRUE(disk.records()[0].entry.payload.empty());
  EXPECT_TRUE(disk.records()[1].entry.payload.empty());
  EXPECT_FALSE(disk.records()[2].entry.payload.empty());
  // The byte accounting still reflects the original encoded sizes.
  EXPECT_EQ(disk.records()[0].encoded_size,
            MakeEntry(1, 1, 0, "payload").EncodedSize());
}

TEST_F(SimDiskTest, FaultDrawsAreDeterministicAndPerNode) {
  auto run = [this](int64_t node_id) {
    SimDisk disk(&sim_, Opts(), node_id);
    for (int i = 1; i <= 3; ++i) {
      EXPECT_TRUE(
          disk.Append(MakeEntry(i, 1, i == 1 ? 0 : 1, "payload")).ok());
    }
    EXPECT_TRUE(SyncNow(&disk).ok());
    EXPECT_TRUE(disk.Append(MakeEntry(4, 1, 1, "lost-on-crash")).ok());
    disk.Crash();
    return disk.torn_tail_bytes();
  };
  EXPECT_EQ(run(0), run(0));  // Same node id: same draw.
}

}  // namespace
}  // namespace nbraft::storage
