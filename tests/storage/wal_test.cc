#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace nbraft::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("wal_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".log");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(WalTest, AppendAndReplay) {
  Wal wal;
  ASSERT_TRUE(wal.Open(path_.string()).ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(
        wal.Append(MakeEntry(i, 1, i == 1 ? 0 : 1, "payload")).ok());
  }
  ASSERT_TRUE(wal.Close().ok());

  std::vector<LogEntry> replayed;
  ASSERT_TRUE(
      Wal::Replay(path_.string(),
                  [&](LogEntry e) { replayed.push_back(std::move(e)); })
          .ok());
  ASSERT_EQ(replayed.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replayed[static_cast<size_t>(i)].index, i + 1);
    EXPECT_EQ(replayed[static_cast<size_t>(i)].payload, "payload");
  }
}

TEST_F(WalTest, ReopenAppendsAtEnd) {
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path_.string()).ok());
    ASSERT_TRUE(wal.Append(MakeEntry(1, 1, 0)).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path_.string()).ok());
    ASSERT_TRUE(wal.Append(MakeEntry(2, 1, 1)).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  int count = 0;
  ASSERT_TRUE(Wal::Replay(path_.string(), [&](LogEntry) { ++count; }).ok());
  EXPECT_EQ(count, 2);
}

TEST_F(WalTest, TornTailDetectedAndSkipped) {
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path_.string()).ok());
    ASSERT_TRUE(wal.Append(MakeEntry(1, 1, 0, "intact")).ok());
    ASSERT_TRUE(wal.Append(MakeEntry(2, 1, 1, "will-be-torn")).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Chop a few bytes off the end — a crash mid-append.
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 5);

  std::vector<LogEntry> replayed;
  size_t torn = 0;
  ASSERT_TRUE(Wal::Replay(
                  path_.string(),
                  [&](LogEntry e) { replayed.push_back(std::move(e)); },
                  &torn)
                  .ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].payload, "intact");
  EXPECT_GT(torn, 0u);
}

TEST_F(WalTest, CorruptedMiddleStopsReplay) {
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path_.string()).ok());
    ASSERT_TRUE(wal.Append(MakeEntry(1, 1, 0, "aaaa")).ok());
    ASSERT_TRUE(wal.Append(MakeEntry(2, 1, 1, "bbbb")).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Flip a byte inside the first record: replay must not yield garbage.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(6);
    f.put('\x7f');
  }
  std::vector<LogEntry> replayed;
  size_t torn = 0;
  ASSERT_TRUE(Wal::Replay(
                  path_.string(),
                  [&](LogEntry e) { replayed.push_back(std::move(e)); },
                  &torn)
                  .ok());
  EXPECT_TRUE(replayed.empty());
  EXPECT_GT(torn, 0u);
}

TEST_F(WalTest, ReplayMissingFileFails) {
  EXPECT_FALSE(Wal::Replay("/nonexistent/dir/file.log",
                           [](LogEntry) {})
                   .ok());
}

TEST_F(WalTest, DoubleOpenRejected) {
  Wal wal;
  ASSERT_TRUE(wal.Open(path_.string()).ok());
  EXPECT_FALSE(wal.Open(path_.string()).ok());
}

TEST_F(WalTest, AppendWithoutOpenFails) {
  Wal wal;
  EXPECT_FALSE(wal.Append(MakeEntry(1, 1, 0)).ok());
  EXPECT_FALSE(wal.Sync().ok());
}

TEST_F(WalTest, SyncMakesDataVisible) {
  Wal wal;
  ASSERT_TRUE(wal.Open(path_.string()).ok());
  ASSERT_TRUE(wal.Append(MakeEntry(1, 1, 0)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  int count = 0;
  ASSERT_TRUE(Wal::Replay(path_.string(), [&](LogEntry) { ++count; }).ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(wal.appended_entries(), 1u);
  ASSERT_TRUE(wal.Close().ok());
}

}  // namespace
}  // namespace nbraft::storage
