// Per-thread simulator isolation: two full Cluster simulations running on
// concurrent threads must produce exactly the reports they produce when
// run serially — no shared mutable state (static counters, the log-clock
// hook, rng streams) may leak between them. This is the regression fence
// for the parallel sweep scheduler: if anything global creeps back into
// the simulator stack, the fingerprints here diverge.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos_plan.h"
#include "chaos/chaos_runner.h"
#include "chaos/chaos_sweep.h"
#include "common/logging.h"
#include "harness/cluster.h"

namespace nbraft::chaos {
namespace {

ChaosCell IsolationCell(raft::Protocol protocol, uint64_t seed) {
  ChaosCell cell;
  cell.name = std::string(protocol == raft::Protocol::kRaft ? "raft"
                                                            : "nbraft") +
              "_seed" + std::to_string(seed);
  cell.config.num_nodes = 3;
  cell.config.num_clients = 2;
  cell.config.protocol = protocol;
  cell.config.window_size = 64;
  cell.config.payload_size = 256;
  cell.config.client_think = Millis(1);
  cell.config.election_timeout = Millis(150);
  cell.config.seed = seed * 7919 + 13;
  cell.config.client_backoff_base = Millis(150);
  cell.config.client_backoff_cap = Millis(1200);
  cell.config.client_max_requests = 100;
  cell.config.snapshot_threshold = 0;
  cell.plan.seed = seed;
  cell.plan.min_gap = Millis(30);
  cell.plan.max_gap = Millis(120);
  cell.plan.min_duration = Millis(50);
  cell.plan.max_duration = Millis(200);
  cell.options.rounds = 3;
  cell.options.round_length = Millis(200);
  cell.options.drain = Millis(1200);
  return cell;
}

TEST(ConcurrentIsolationTest, TwoConcurrentClustersMatchSerialRuns) {
  const ChaosCell raft_cell = IsolationCell(raft::Protocol::kRaft, 5);
  const ChaosCell nb_cell = IsolationCell(raft::Protocol::kNbRaft, 5);

  // Serial oracle: each scenario alone on this thread.
  ChaosRunner serial_raft(raft_cell.config, raft_cell.plan,
                          raft_cell.options);
  const ChaosReport raft_alone = serial_raft.Run();
  ChaosRunner serial_nb(nb_cell.config, nb_cell.plan, nb_cell.options);
  const ChaosReport nb_alone = serial_nb.Run();
  ASSERT_TRUE(raft_alone.ok()) << raft_alone.Summary();
  ASSERT_TRUE(nb_alone.ok()) << nb_alone.Summary();

  // The same two scenarios, genuinely concurrent on two raw threads
  // (below the scheduler, so this pins the substrate itself).
  ChaosReport raft_concurrent;
  ChaosReport nb_concurrent;
  std::thread t1([&] {
    ChaosRunner runner(raft_cell.config, raft_cell.plan, raft_cell.options);
    raft_concurrent = runner.Run();
  });
  std::thread t2([&] {
    ChaosRunner runner(nb_cell.config, nb_cell.plan, nb_cell.options);
    nb_concurrent = runner.Run();
  });
  t1.join();
  t2.join();

  EXPECT_EQ(ChaosReportHash(raft_alone), ChaosReportHash(raft_concurrent));
  EXPECT_EQ(ChaosReportHash(nb_alone), ChaosReportHash(nb_concurrent));
  EXPECT_EQ(raft_alone.committed_prefix_hash,
            raft_concurrent.committed_prefix_hash);
  EXPECT_EQ(nb_alone.committed_prefix_hash,
            nb_concurrent.committed_prefix_hash);
  EXPECT_EQ(raft_alone.fault_fingerprint, raft_concurrent.fault_fingerprint);
  EXPECT_EQ(nb_alone.fault_fingerprint, nb_concurrent.fault_fingerprint);
  EXPECT_EQ(raft_alone.sim_events, raft_concurrent.sim_events);
  EXPECT_EQ(nb_alone.sim_events, nb_concurrent.sim_events);
}

TEST(ConcurrentIsolationTest, LogClockIsThreadLocal) {
  // A substrate created on another thread installs its clock on THAT
  // thread only; this thread's hook must stay untouched throughout, and
  // the worker's hook must be gone once its cluster dies (so a later
  // substrate on a reused worker thread installs its own).
  ASSERT_FALSE(HasLogClock());
  bool worker_saw_clock = false;
  bool worker_clock_cleared = false;
  std::thread t([&] {
    {
      harness::ClusterConfig config;
      config.num_nodes = 3;
      config.num_clients = 1;
      config.client_max_requests = 1;
      harness::Cluster cluster(config);
      worker_saw_clock = HasLogClock();
    }
    worker_clock_cleared = !HasLogClock();
  });
  // Main thread can install and own its own clock concurrently.
  SetLogClock([]() { return int64_t{123}; });
  t.join();
  EXPECT_TRUE(worker_saw_clock);
  EXPECT_TRUE(worker_clock_cleared);
  EXPECT_TRUE(HasLogClock());
  ClearLogClock();
  EXPECT_FALSE(HasLogClock());
}

TEST(ConcurrentIsolationTest, SchedulerMatrixMatchesSerialHashes) {
  // Four cells (2 protocols x 2 seeds) through the scheduler at four
  // workers vs the plain serial loop, compared cell by cell.
  std::vector<ChaosCell> cells;
  for (const raft::Protocol protocol :
       {raft::Protocol::kRaft, raft::Protocol::kNbRaft}) {
    for (const uint64_t seed : {2u, 9u}) {
      cells.push_back(IsolationCell(protocol, seed));
    }
  }
  std::vector<uint64_t> serial_hashes;
  for (const ChaosCell& cell : cells) {
    ChaosRunner runner(cell.config, cell.plan, cell.options);
    serial_hashes.push_back(ChaosReportHash(runner.Run()));
  }
  const ChaosSweepOutcome outcome = RunChaosSweep(cells, /*workers=*/4);
  ASSERT_EQ(outcome.reports.size(), cells.size());
  EXPECT_TRUE(outcome.ok()) << outcome.sweep.Summary();
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(outcome.sweep.results[i].output.fingerprint, serial_hashes[i])
        << cells[i].name;
  }
}

}  // namespace
}  // namespace nbraft::chaos
