// The sweep scheduler's determinism contract: results are merged in task
// index order with a chained hash that is byte-identical for any worker
// count; workers=1 runs inline on the calling thread (the serial oracle);
// per-task seeds depend only on (sweep_seed, task_index); and a throwing
// task reports its failure without killing the sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "sweep/report.h"
#include "sweep/scheduler.h"
#include "sweep/task.h"

namespace nbraft::sweep {
namespace {

// A deterministic CPU-burning cell: results depend only on the task seed,
// never on which worker ran it or when.
TaskOutput BurnCell(uint64_t task_seed, int rounds) {
  Rng rng(task_seed);
  uint64_t acc = task_seed;
  for (int i = 0; i < rounds; ++i) {
    acc = acc * 6364136223846793005ULL + rng.Next();
  }
  TaskOutput out;
  out.fingerprint = acc;
  out.events = static_cast<uint64_t>(rounds);
  out.detail = "acc " + std::to_string(acc % 1000);
  return out;
}

std::vector<SweepTask> BurnTasks(size_t n, int rounds) {
  std::vector<SweepTask> tasks;
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back(SweepTask{
        "burn" + std::to_string(i),
        [rounds](uint64_t task_seed) { return BurnCell(task_seed, rounds); }});
  }
  return tasks;
}

SweepReport RunWith(int workers, const std::vector<SweepTask>& tasks,
                    uint64_t sweep_seed = 7) {
  SweepOptions options;
  options.workers = workers;
  options.sweep_seed = sweep_seed;
  SweepScheduler scheduler(options);
  return scheduler.Run(tasks);
}

TEST(TaskSeedTest, DependsOnlyOnSeedAndIndex) {
  EXPECT_EQ(TaskSeed(1, 0), TaskSeed(1, 0));
  EXPECT_NE(TaskSeed(1, 0), TaskSeed(1, 1));
  EXPECT_NE(TaskSeed(1, 0), TaskSeed(2, 0));
  // Streams stay distinct over a wide index range (splitmix64 dispersion).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(TaskSeed(42, i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(TaskSeedTest, PinnedValues) {
  // Golden values: changing the derivation silently re-seeds every sweep
  // in the repo, so it must be a deliberate, test-breaking act.
  EXPECT_EQ(TaskSeed(0, 0), 16294208416658607535ULL);
  EXPECT_EQ(TaskSeed(42, 7), TaskSeed(42, 7));
}

TEST(SweepSchedulerTest, MergedReportByteIdenticalAcrossWorkerCounts) {
  const std::vector<SweepTask> tasks = BurnTasks(31, 2000);
  const SweepReport serial = RunWith(1, tasks);
  for (const int workers : {2, 4, 8}) {
    const SweepReport parallel = RunWith(workers, tasks);
    EXPECT_EQ(serial.merged_hash, parallel.merged_hash) << workers;
    EXPECT_EQ(serial.ToJson(), parallel.ToJson()) << workers;
    EXPECT_EQ(parallel.total_events, serial.total_events);
  }
}

TEST(SweepSchedulerTest, ResultsOrderedByTaskIndex) {
  // Uneven task costs scramble completion order; the merge must not care.
  std::vector<SweepTask> tasks;
  for (size_t i = 0; i < 16; ++i) {
    const int rounds = (i % 2 == 0) ? 40000 : 10;
    tasks.push_back(SweepTask{
        "mix" + std::to_string(i),
        [rounds](uint64_t s) { return BurnCell(s, rounds); }});
  }
  const SweepReport report = RunWith(4, tasks);
  ASSERT_EQ(report.results.size(), 16u);
  for (size_t i = 0; i < report.results.size(); ++i) {
    EXPECT_EQ(report.results[i].task_index, i);
    EXPECT_EQ(report.results[i].name, "mix" + std::to_string(i));
    EXPECT_TRUE(report.results[i].completed);
  }
  EXPECT_EQ(report.ToJson(), RunWith(1, tasks).ToJson());
}

TEST(SweepSchedulerTest, WorkersOneRunsInlineOnCallingThread) {
  const std::thread::id main_id = std::this_thread::get_id();
  std::vector<std::thread::id> ran_on(3);
  std::vector<SweepTask> tasks;
  for (size_t i = 0; i < 3; ++i) {
    tasks.push_back(SweepTask{"inline" + std::to_string(i),
                              [&ran_on, i](uint64_t) {
                                ran_on[i] = std::this_thread::get_id();
                                return TaskOutput{};
                              }});
  }
  RunWith(1, tasks);
  for (const std::thread::id& id : ran_on) EXPECT_EQ(id, main_id);
}

TEST(SweepSchedulerTest, ParallelRunUsesWorkerThreads) {
  const std::thread::id main_id = std::this_thread::get_id();
  std::atomic<int> off_main{0};
  std::vector<SweepTask> tasks;
  for (size_t i = 0; i < 8; ++i) {
    tasks.push_back(SweepTask{"t" + std::to_string(i),
                              [&off_main, main_id](uint64_t s) {
                                if (std::this_thread::get_id() != main_id) {
                                  off_main.fetch_add(1);
                                }
                                return BurnCell(s, 100);
                              }});
  }
  const SweepReport report = RunWith(4, tasks);
  EXPECT_EQ(off_main.load(), 8);
  EXPECT_EQ(report.workers_used, 4);
  for (const SweepResult& r : report.results) {
    EXPECT_GE(r.worker, 0);
    EXPECT_LT(r.worker, 4);
  }
}

TEST(SweepSchedulerTest, ThrowingTaskIsIsolatedAndDeterministic) {
  std::vector<SweepTask> tasks = BurnTasks(6, 500);
  tasks[2].run = [](uint64_t) -> TaskOutput {
    throw std::runtime_error("cell exploded");
  };
  const SweepReport a = RunWith(4, tasks);
  EXPECT_EQ(a.failed, 1u);
  EXPECT_FALSE(a.ok());
  EXPECT_FALSE(a.results[2].completed);
  EXPECT_EQ(a.results[2].error, "cell exploded");
  EXPECT_EQ(a.results[2].output.fingerprint, 0u);
  for (const size_t i : {0u, 1u, 3u, 4u, 5u}) {
    EXPECT_TRUE(a.results[i].ok()) << i;
  }
  // The failure itself merges deterministically.
  const SweepReport b = RunWith(1, tasks);
  EXPECT_EQ(a.merged_hash, b.merged_hash);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(SweepSchedulerTest, CellLevelFailureCountsWithoutKillingSweep) {
  std::vector<SweepTask> tasks = BurnTasks(4, 100);
  tasks[1].run = [](uint64_t) {
    TaskOutput out;
    out.ok = false;
    out.detail = "oracle violation";
    return out;
  };
  const SweepReport report = RunWith(2, tasks);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_TRUE(report.results[1].completed);
  EXPECT_FALSE(report.results[1].ok());
}

TEST(SweepSchedulerTest, MoreWorkersThanTasksClamps) {
  const std::vector<SweepTask> tasks = BurnTasks(3, 100);
  const SweepReport report = RunWith(16, tasks);
  EXPECT_EQ(report.workers_used, 3);
  EXPECT_EQ(report.results.size(), 3u);
  EXPECT_EQ(report.merged_hash, RunWith(1, tasks).merged_hash);
}

TEST(SweepSchedulerTest, EmptySweepIsWellFormed) {
  const SweepReport report = RunWith(4, {});
  EXPECT_EQ(report.results.size(), 0u);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.merged_hash, RunWith(1, {}).merged_hash);
}

TEST(SweepSchedulerTest, ReportJsonEscapesDetails) {
  std::vector<SweepTask> tasks;
  tasks.push_back(SweepTask{"quote\"task", [](uint64_t) {
                              TaskOutput out;
                              out.detail = "line1\nline2\t\"quoted\"";
                              return out;
                            }});
  const std::string json = RunWith(1, tasks).ToJson();
  EXPECT_NE(json.find("quote\\\"task"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\t\\\"quoted\\\""), std::string::npos);
}

TEST(WorkersFromEnvTest, ParsesAndFallsBack) {
  unsetenv("NBRAFT_SWEEP_WORKERS");
  EXPECT_EQ(WorkersFromEnv(3), 3);
  setenv("NBRAFT_SWEEP_WORKERS", "8", 1);
  EXPECT_EQ(WorkersFromEnv(3), 8);
  setenv("NBRAFT_SWEEP_WORKERS", "0", 1);
  EXPECT_EQ(WorkersFromEnv(3), 3);
  setenv("NBRAFT_SWEEP_WORKERS", "soup", 1);
  EXPECT_EQ(WorkersFromEnv(3), 3);
  unsetenv("NBRAFT_SWEEP_WORKERS");
}

}  // namespace
}  // namespace nbraft::sweep
