#include <gtest/gtest.h>

#include "storage/log_entry.h"
#include "tsdb/ingest_record.h"
#include "tsdb/state_machine.h"

namespace nbraft::tsdb {
namespace {

storage::LogEntry IngestEntry(const std::vector<Measurement>& batch) {
  static storage::LogIndex next = 1;
  storage::LogEntry e;
  e.index = next++;
  e.term = 1;
  std::string bytes;
  EncodeIngestBatch(batch, 0, &bytes);
  e.payload = std::move(bytes);
  return e;
}

TEST(AggregateRangeTest, EmptySeries) {
  TsdbStateMachine sm;
  auto agg = sm.AggregateRange(1, 0, 1000);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 0u);
  EXPECT_EQ(agg->Mean(), 0.0);
}

TEST(AggregateRangeTest, FullRangeOverMemtable) {
  TsdbStateMachine sm;
  sm.Apply(IngestEntry({{1, {100, 2.0}}, {1, {200, 4.0}}, {1, {300, 6.0}}}));
  auto agg = sm.AggregateRange(1, 0, 1000);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 3u);
  EXPECT_EQ(agg->min, 2.0);
  EXPECT_EQ(agg->max, 6.0);
  EXPECT_EQ(agg->sum, 12.0);
  EXPECT_EQ(agg->Mean(), 4.0);
}

TEST(AggregateRangeTest, BoundsAreInclusive) {
  TsdbStateMachine sm;
  sm.Apply(IngestEntry({{1, {100, 1.0}}, {1, {200, 2.0}}, {1, {300, 3.0}}}));
  auto agg = sm.AggregateRange(1, 100, 200);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 2u);
  EXPECT_EQ(agg->sum, 3.0);
}

TEST(AggregateRangeTest, SpansChunksAndMemtable) {
  TsdbStateMachine::Options options;
  options.flush_threshold_points = 2;
  TsdbStateMachine sm(options);
  sm.Apply(IngestEntry({{1, {100, 10.0}}, {1, {200, 20.0}}}));  // Flushed.
  sm.Apply(IngestEntry({{1, {300, 30.0}}}));                    // Buffered.
  auto agg = sm.AggregateRange(1, 0, 1000);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 3u);
  EXPECT_EQ(agg->min, 10.0);
  EXPECT_EQ(agg->max, 30.0);
  EXPECT_EQ(agg->Mean(), 20.0);
}

TEST(AggregateRangeTest, ChunkPruningStillCorrect) {
  TsdbStateMachine::Options options;
  options.flush_threshold_points = 2;
  TsdbStateMachine sm(options);
  // Two chunks with disjoint time ranges.
  sm.Apply(IngestEntry({{1, {100, 1.0}}, {1, {110, 2.0}}}));
  sm.Apply(IngestEntry({{1, {5000, 50.0}}, {1, {5010, 60.0}}}));
  // Query overlapping only the second chunk.
  auto agg = sm.AggregateRange(1, 4000, 6000);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 2u);
  EXPECT_EQ(agg->min, 50.0);
  EXPECT_EQ(agg->max, 60.0);
}

TEST(AggregateRangeTest, SeriesAreIsolated) {
  TsdbStateMachine sm;
  sm.Apply(IngestEntry({{1, {100, 1.0}}, {2, {100, 99.0}}}));
  auto agg = sm.AggregateRange(1, 0, 1000);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 1u);
  EXPECT_EQ(agg->max, 1.0);
}

TEST(AggregateRangeTest, NegativeValuesAndRange) {
  TsdbStateMachine sm;
  sm.Apply(IngestEntry({{1, {-50, -3.5}}, {1, {0, 0.0}}, {1, {50, 3.5}}}));
  auto agg = sm.AggregateRange(1, -100, 0);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->count, 2u);
  EXPECT_EQ(agg->min, -3.5);
  EXPECT_EQ(agg->max, 0.0);
}

}  // namespace
}  // namespace nbraft::tsdb
