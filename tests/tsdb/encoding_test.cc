#include "tsdb/encoding.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.h"
#include "tsdb/bitstream.h"

namespace nbraft::tsdb {
namespace {

// ---- Bitstream ----

TEST(BitstreamTest, RoundTripMixedWidths) {
  std::string buf;
  BitWriter w(&buf);
  w.Write(0b101, 3);
  w.Write(0xdeadbeef, 32);
  w.WriteBit(true);
  w.Write(0x0123456789abcdefULL, 64);
  w.Finish();

  BitReader r(buf);
  uint64_t v = 0;
  ASSERT_TRUE(r.Read(&v, 3));
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(r.Read(&v, 32));
  EXPECT_EQ(v, 0xdeadbeefu);
  bool bit = false;
  ASSERT_TRUE(r.ReadBit(&bit));
  EXPECT_TRUE(bit);
  ASSERT_TRUE(r.Read(&v, 64));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(BitstreamTest, ReadPastEndFails) {
  std::string buf;
  BitWriter w(&buf);
  w.Write(0xff, 8);
  w.Finish();
  BitReader r(buf);
  uint64_t v = 0;
  ASSERT_TRUE(r.Read(&v, 8));
  EXPECT_FALSE(r.Read(&v, 1));
}

TEST(BitstreamTest, ZeroBitsReadsNothing) {
  std::string buf;
  BitWriter w(&buf);
  w.Write(0, 0);
  w.Finish();
  EXPECT_TRUE(buf.empty());
  BitReader r(buf);
  uint64_t v = 99;
  EXPECT_TRUE(r.Read(&v, 0));
  EXPECT_EQ(v, 0u);
}

// ---- Timestamp encoding ----

class TimestampCodecTest
    : public ::testing::TestWithParam<std::vector<int64_t>> {};

TEST_P(TimestampCodecTest, RoundTrip) {
  const std::vector<int64_t>& ts = GetParam();
  std::string buf;
  EncodeTimestamps(ts, &buf);
  auto decoded = DecodeTimestamps(buf, ts.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), ts);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, TimestampCodecTest,
    ::testing::Values(
        std::vector<int64_t>{},
        std::vector<int64_t>{1600000000000},
        // Perfectly regular 1 Hz sampling: the common IoT case.
        std::vector<int64_t>{1000, 2000, 3000, 4000, 5000, 6000},
        // Small jitter around the interval.
        std::vector<int64_t>{1000, 2003, 2995, 4001, 5000, 6010},
        // Negative and decreasing values.
        std::vector<int64_t>{-50, -100, -20, 0, 7},
        // Large jumps requiring the 64-bit escape.
        std::vector<int64_t>{0, 1, int64_t{1} << 40, (int64_t{1} << 40) + 1},
        // Boundary deltas of each bucket.
        std::vector<int64_t>{0, 64, 64 + 64 + 65, 500, 1000, 5000}));

TEST(TimestampCodecTest, RegularSeriesCompressesToOneBitPerPoint) {
  std::vector<int64_t> ts;
  for (int i = 0; i < 1000; ++i) ts.push_back(1600000000000 + i * 1000);
  std::string buf;
  EncodeTimestamps(ts, &buf);
  // Header 8B + ~7 bits for the first delta + 1 bit each after.
  EXPECT_LT(buf.size(), 8 + 2 + 1000 / 8 + 8);
}

TEST(TimestampCodecTest, TruncatedBufferFails) {
  std::vector<int64_t> ts = {100, 200, 350, 500};
  std::string buf;
  EncodeTimestamps(ts, &buf);
  auto decoded = DecodeTimestamps(buf.substr(0, 4), ts.size());
  EXPECT_FALSE(decoded.ok());
}

TEST(TimestampCodecTest, RandomizedRoundTrip) {
  Rng rng(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int64_t> ts;
    int64_t t = static_cast<int64_t>(rng.NextBounded(1ull << 40));
    const size_t n = 1 + rng.NextBounded(200);
    for (size_t i = 0; i < n; ++i) {
      t += rng.NextInRange(-10000, 100000);
      ts.push_back(t);
    }
    std::string buf;
    EncodeTimestamps(ts, &buf);
    auto decoded = DecodeTimestamps(buf, ts.size());
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value(), ts);
  }
}

// ---- Gorilla value encoding ----

class ValueCodecTest : public ::testing::TestWithParam<std::vector<double>> {
};

TEST_P(ValueCodecTest, RoundTrip) {
  const std::vector<double>& values = GetParam();
  std::string buf;
  EncodeValues(values, &buf);
  auto decoded = DecodeValues(buf, values.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::isnan(values[i])) {
      EXPECT_TRUE(std::isnan((*decoded)[i]));
    } else {
      EXPECT_EQ((*decoded)[i], values[i]) << "at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, ValueCodecTest,
    ::testing::Values(
        std::vector<double>{},
        std::vector<double>{42.0},
        // Constant plateau: the best case (1 bit per repeat).
        std::vector<double>{21.5, 21.5, 21.5, 21.5, 21.5},
        // Slow sensor drift.
        std::vector<double>{20.0, 20.1, 20.2, 20.15, 20.3},
        // Sign changes and zero.
        std::vector<double>{-1.5, 0.0, 1.5, -0.0, 2.25},
        // Special values.
        std::vector<double>{std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN(), 1.0},
        std::vector<double>{std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::min()}));

TEST(ValueCodecTest, ConstantSeriesCompressesToOneBitPerPoint) {
  std::vector<double> values(1000, 3.14159);
  std::string buf;
  EncodeValues(values, &buf);
  EXPECT_LT(buf.size(), 8 + 1000 / 8 + 2);
}

TEST(ValueCodecTest, RandomizedRoundTrip) {
  Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> values;
    const size_t n = 1 + rng.NextBounded(300);
    double v = rng.NextGaussian(0, 100);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(0.3)) v = rng.NextGaussian(0, 1e6);
      if (rng.NextBool(0.2)) v += rng.NextGaussian(0, 0.01);
      values.push_back(v);
    }
    std::string buf;
    EncodeValues(values, &buf);
    auto decoded = DecodeValues(buf, values.size());
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value(), values);
  }
}

TEST(ValueCodecTest, TruncatedBufferFails) {
  std::vector<double> values = {1.0, 2.0, 3.0};
  std::string buf;
  EncodeValues(values, &buf);
  auto decoded = DecodeValues(buf.substr(0, 5), values.size());
  EXPECT_FALSE(decoded.ok());
}

// ---- Chunk ----

TEST(ChunkTest, BuildAndDecode) {
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) {
    points.push_back(Point{1000 + i * 10, 20.0 + 0.01 * i});
  }
  Chunk chunk = BuildChunk(7, points);
  EXPECT_EQ(chunk.series_id, 7u);
  EXPECT_EQ(chunk.point_count, 100u);
  EXPECT_EQ(chunk.min_timestamp, 1000);
  EXPECT_EQ(chunk.max_timestamp, 1990);
  auto decoded = chunk.Decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), points);
}

TEST(ChunkTest, EmptyChunk) {
  Chunk chunk = BuildChunk(1, {});
  EXPECT_EQ(chunk.point_count, 0u);
  auto decoded = chunk.Decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(ChunkTest, CompressionBeatsRawForRegularData) {
  std::vector<Point> points;
  for (int i = 0; i < 1000; ++i) {
    points.push_back(Point{i * 1000, 42.0});
  }
  Chunk chunk = BuildChunk(1, points);
  EXPECT_LT(chunk.EncodedBytes(), points.size() * sizeof(Point) / 10);
}

}  // namespace
}  // namespace nbraft::tsdb
