#include "tsdb/ingest_record.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace nbraft::tsdb {
namespace {

std::vector<Measurement> SampleBatch() {
  return {
      {1, {1000, 20.5}},
      {2, {1001, -3.25}},
      {1, {2000, 20.6}},
  };
}

TEST(IngestRecordTest, RoundTrip) {
  std::string buf;
  EncodeIngestBatch(SampleBatch(), 0, &buf);
  auto parsed = ParseIngestBatch(buf);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), SampleBatch());
}

TEST(IngestRecordTest, PaddingToTargetSize) {
  std::string buf;
  EncodeIngestBatch(SampleBatch(), 4096, &buf);
  EXPECT_EQ(buf.size(), 4096u);
  auto parsed = ParseIngestBatch(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), SampleBatch());
}

TEST(IngestRecordTest, TargetSmallerThanNaturalKeepsNatural) {
  std::string buf;
  EncodeIngestBatch(SampleBatch(), 1, &buf);
  auto parsed = ParseIngestBatch(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
}

TEST(IngestRecordTest, EmptyBatch) {
  std::string buf;
  EncodeIngestBatch({}, 64, &buf);
  EXPECT_EQ(buf.size(), 64u);
  auto parsed = ParseIngestBatch(buf);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(IngestRecordTest, AppendsToExistingBuffer) {
  std::string buf = "prefix";
  EncodeIngestBatch(SampleBatch(), 0, &buf);
  EXPECT_EQ(buf.substr(0, 6), "prefix");
  auto parsed = ParseIngestBatch(std::string_view(buf).substr(6));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
}

TEST(IngestRecordTest, TruncatedFails) {
  std::string buf;
  EncodeIngestBatch(SampleBatch(), 0, &buf);
  for (size_t keep = 0; keep + 10 < buf.size(); keep += 7) {
    auto parsed = ParseIngestBatch(std::string_view(buf).substr(0, keep));
    EXPECT_FALSE(parsed.ok()) << "kept " << keep;
  }
}

TEST(IngestRecordTest, ImplausibleCountRejected) {
  // A count claiming more measurements than bytes available.
  std::string buf;
  buf.push_back('\x7f');  // count = 127, no data.
  auto parsed = ParseIngestBatch(buf);
  EXPECT_FALSE(parsed.ok());
}

TEST(IngestRecordTest, GarbageRejectedOrEmpty) {
  auto parsed = ParseIngestBatch("");
  EXPECT_FALSE(parsed.ok());
}

TEST(IngestRecordTest, RandomizedRoundTrip) {
  Rng rng(21);
  for (int round = 0; round < 100; ++round) {
    std::vector<Measurement> batch;
    const size_t n = rng.NextBounded(40);
    for (size_t i = 0; i < n; ++i) {
      Measurement m;
      m.series_id = rng.Next() >> rng.NextBounded(60);
      m.point.timestamp = rng.NextInRange(-1'000'000, 2'000'000'000);
      m.point.value = rng.NextGaussian(0, 1e4);
      batch.push_back(m);
    }
    std::string buf;
    const size_t target = rng.NextBounded(2048);
    EncodeIngestBatch(batch, target, &buf);
    auto parsed = ParseIngestBatch(buf);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value(), batch);
  }
}

}  // namespace
}  // namespace nbraft::tsdb
