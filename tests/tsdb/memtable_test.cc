#include "tsdb/memtable.h"

#include <gtest/gtest.h>

namespace nbraft::tsdb {
namespace {

TEST(MemtableTest, StartsEmpty) {
  Memtable mt;
  EXPECT_TRUE(mt.Empty());
  EXPECT_EQ(mt.point_count(), 0u);
  EXPECT_EQ(mt.series_count(), 0u);
  EXPECT_TRUE(mt.Scan(1).empty());
}

TEST(MemtableTest, InsertAndScan) {
  Memtable mt;
  mt.Insert(1, {100, 1.0});
  mt.Insert(1, {200, 2.0});
  mt.Insert(2, {100, 9.0});
  EXPECT_EQ(mt.point_count(), 3u);
  EXPECT_EQ(mt.series_count(), 2u);
  const auto points = mt.Scan(1);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].timestamp, 100);
  EXPECT_EQ(points[1].timestamp, 200);
}

TEST(MemtableTest, ScanSortsOutOfOrderInserts) {
  Memtable mt;
  mt.Insert(1, {300, 3.0});
  mt.Insert(1, {100, 1.0});
  mt.Insert(1, {200, 2.0});
  const auto points = mt.Scan(1);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].timestamp, 100);
  EXPECT_EQ(points[1].timestamp, 200);
  EXPECT_EQ(points[2].timestamp, 300);
}

TEST(MemtableTest, DuplicateTimestampsPreservedStably) {
  Memtable mt;
  mt.Insert(1, {100, 1.0});
  mt.Insert(1, {100, 2.0});
  const auto points = mt.Scan(1);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].value, 1.0);
  EXPECT_EQ(points[1].value, 2.0);
}

TEST(MemtableTest, FlushProducesSortedChunksAndClears) {
  Memtable mt;
  mt.Insert(2, {50, 5.0});
  mt.Insert(1, {300, 3.0});
  mt.Insert(1, {100, 1.0});
  const auto chunks = mt.FlushAll();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].series_id, 1u);
  EXPECT_EQ(chunks[1].series_id, 2u);
  EXPECT_EQ(chunks[0].point_count, 2u);
  EXPECT_EQ(chunks[0].min_timestamp, 100);
  EXPECT_EQ(chunks[0].max_timestamp, 300);
  EXPECT_TRUE(mt.Empty());

  auto decoded = chunks[0].Decode();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].timestamp, 100);
  EXPECT_EQ((*decoded)[1].timestamp, 300);
}

TEST(MemtableTest, FlushEmptyYieldsNothing) {
  Memtable mt;
  EXPECT_TRUE(mt.FlushAll().empty());
}

TEST(MemtableTest, ApproximateBytesGrows) {
  Memtable mt;
  const size_t before = mt.ApproximateBytes();
  for (int i = 0; i < 100; ++i) mt.Insert(1, {i, 0.0});
  EXPECT_GT(mt.ApproximateBytes(), before + 100 * sizeof(Point) - 1);
}

}  // namespace
}  // namespace nbraft::tsdb
