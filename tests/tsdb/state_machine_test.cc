#include "tsdb/state_machine.h"

#include <gtest/gtest.h>

#include "storage/log_entry.h"
#include "tsdb/ingest_record.h"

namespace nbraft::tsdb {
namespace {

storage::LogEntry IngestEntry(storage::LogIndex index,
                              const std::vector<Measurement>& batch,
                              size_t target_size = 0) {
  storage::LogEntry e;
  e.index = index;
  e.term = 1;
  e.prev_term = 1;
  std::string bytes;
  EncodeIngestBatch(batch, target_size, &bytes);
  e.payload = std::move(bytes);
  return e;
}

TEST(TsdbStateMachineTest, AppliesAndQueries) {
  TsdbStateMachine sm;
  sm.Apply(IngestEntry(1, {{7, {100, 1.5}}, {7, {200, 2.5}}}));
  sm.Apply(IngestEntry(2, {{7, {300, 3.5}}, {9, {100, 9.0}}}));
  EXPECT_EQ(sm.applied_entries(), 2u);
  EXPECT_EQ(sm.ingested_points(), 4u);
  auto points = sm.Query(7);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_EQ((*points)[2].value, 3.5);
  EXPECT_EQ(sm.PointCount(7), 3u);
  EXPECT_EQ(sm.PointCount(9), 1u);
  EXPECT_EQ(sm.PointCount(12345), 0u);
}

TEST(TsdbStateMachineTest, ApplyCostPositiveAndGrowsWithBatch) {
  TsdbStateMachine sm;
  const SimDuration small =
      sm.Apply(IngestEntry(1, {{1, {1, 1.0}}}));
  std::vector<Measurement> big;
  for (int i = 0; i < 100; ++i) big.push_back({1, {i + 10, 1.0}});
  const SimDuration large = sm.Apply(IngestEntry(2, big));
  EXPECT_GT(small, 0);
  EXPECT_GT(large, small);
}

TEST(TsdbStateMachineTest, FlushAtThreshold) {
  TsdbStateMachine::Options options;
  options.flush_threshold_points = 10;
  TsdbStateMachine sm(options);
  std::vector<Measurement> batch;
  for (int i = 0; i < 10; ++i) batch.push_back({1, {i * 100, 1.0}});
  EXPECT_EQ(sm.flushed_chunks(), 0u);
  sm.Apply(IngestEntry(1, batch));
  EXPECT_EQ(sm.flushed_chunks(), 1u);
  EXPECT_TRUE(sm.memtable().Empty());
  // Data remains queryable across the flush boundary.
  EXPECT_EQ(sm.PointCount(1), 10u);
  auto points = sm.Query(1);
  ASSERT_TRUE(points.ok());
  EXPECT_EQ(points->size(), 10u);
}

TEST(TsdbStateMachineTest, QueryMergesChunksAndMemtable) {
  TsdbStateMachine::Options options;
  options.flush_threshold_points = 2;
  TsdbStateMachine sm(options);
  sm.Apply(IngestEntry(1, {{5, {100, 1.0}}, {5, {200, 2.0}}}));  // Flushes.
  sm.Apply(IngestEntry(2, {{5, {300, 3.0}}}));  // Stays in memtable.
  auto points = sm.Query(5);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_EQ((*points)[0].timestamp, 100);
  EXPECT_EQ((*points)[2].timestamp, 300);
}

TEST(TsdbStateMachineTest, CorruptPayloadCountedNotFatal) {
  TsdbStateMachine sm;
  storage::LogEntry bad;
  bad.index = 1;
  bad.payload = "\x50 garbage that is not an ingest batch";
  sm.Apply(bad);
  EXPECT_EQ(sm.corrupt_batches(), 1u);
  EXPECT_EQ(sm.ingested_points(), 0u);
  EXPECT_EQ(sm.applied_entries(), 1u);
}

TEST(TsdbStateMachineTest, ParseCostScalesWithBytes) {
  TsdbStateMachine sm;
  EXPECT_GT(sm.ParseCost(64 * 1024), sm.ParseCost(1024));
}

TEST(TsdbStateMachineTest, NameIsStable) {
  TsdbStateMachine sm;
  EXPECT_EQ(sm.name(), "tsdb");
}

TEST(FileStoreStateMachineTest, PaysIoPerRequest) {
  FileStoreStateMachine sm;
  storage::LogEntry e;
  e.index = 1;
  e.payload = std::string(4096, 'x');
  const SimDuration cost = sm.Apply(e);
  EXPECT_GE(cost, Micros(100));  // Synchronous I/O dominates.
  EXPECT_EQ(sm.applied_entries(), 1u);
  EXPECT_EQ(sm.bytes_written(), 4096u);
}

TEST(FileStoreStateMachineTest, CostGrowsWithPayload) {
  FileStoreStateMachine sm;
  storage::LogEntry small;
  small.payload = std::string(1024, 'x');
  storage::LogEntry large;
  large.payload = std::string(1024 * 1024, 'x');
  EXPECT_GT(sm.Apply(large), sm.Apply(small));
}

TEST(FileStoreStateMachineTest, ApplyCostExceedsTsdbProfile) {
  // The Fig. 4 contrast: Ratis FileStore pays I/O per request while IoTDB
  // batches in memory.
  FileStoreStateMachine filestore;
  TsdbStateMachine tsdb;
  const auto entry = IngestEntry(1, {{1, {1, 1.0}}}, 4096);
  EXPECT_GT(filestore.Apply(entry), tsdb.Apply(entry));
}

TEST(FileStoreStateMachineTest, PointCountUnsupported) {
  FileStoreStateMachine sm;
  EXPECT_EQ(sm.PointCount(1), 0u);
}

}  // namespace
}  // namespace nbraft::tsdb
