#!/usr/bin/env python3
"""Compare fresh bench reports against the committed baseline.

Exits non-zero if any workload's events_per_sec falls below --floor times
the baseline. The workloads run a fixed seed for a fixed virtual-time span,
so event counts are deterministic and only wall time varies with the
machine; the floor is deliberately loose so the check catches accidental
algorithmic regressions in the kernel, not runner noise.

Multiple FRESH files are unioned by workload name (later files win on
collisions) — so one committed baseline can gate several benches at once,
e.g. BENCH_sim_kernel.json carrying both the kernel workloads and the
sweep_scale_w<N> rows produced by bench_sweep_scale.

Usage: check_perf_smoke.py BASELINE.json FRESH.json [FRESH2.json ...]
       [--floor 0.5]
       [--check-events]  (only when both reports used the same span/mode)
       [--history FILE]  (append one JSONL record per run for trending)
       [--baseline-update PATH]  (rewrite PATH with the baseline's
           workloads replaced by the fresh measurements, stamped with
           host/date/commit provenance; exits 0 without gating)
"""

import argparse
import datetime
import json
import os
import socket
import subprocess
import sys
import time


def load(path):
    with open(path) as f:
        data = json.load(f)
    return data, {w["name"]: w for w in data["workloads"]}


def provenance():
    commit = ""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=False,
        ).stdout.strip()
    except OSError:
        pass
    return {
        "host": socket.gethostname(),
        "date": datetime.date.today().isoformat(),
        "commit": os.environ.get("GITHUB_SHA", "")[:12] or commit,
        "nproc": os.cpu_count(),
    }


def update_baseline(path, base_doc, base, fresh):
    """Rewrite the baseline with fresh numbers, keeping workload order.

    Baseline workloads keep their position and are overwritten by the
    fresh measurement of the same name; fresh workloads the baseline has
    never seen are appended, so a new bench's rows land in the committed
    file on the first --baseline-update after wiring it up.
    """
    merged = []
    for w in base_doc["workloads"]:
        merged.append(fresh.get(w["name"], w))
    for name, w in fresh.items():
        if name not in base:
            merged.append(w)
    out = dict(base_doc)
    out["workloads"] = merged
    # JSON has no comments; a provenance field keeps the "where did these
    # numbers come from" answer inside the committed artifact itself.
    out["comment"] = provenance()
    with open(path, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"baseline {path} updated: {len(merged)} workloads, "
          f"provenance {out['comment']}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh", nargs="+")
    parser.add_argument("--floor", type=float, default=0.5)
    parser.add_argument(
        "--check-events",
        action="store_true",
        help="also require identical (deterministic) event counts",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append a JSONL record (per-workload ev/s + ratio vs baseline) "
        "so CI can archive a bench history across commits",
    )
    parser.add_argument(
        "--baseline-update",
        metavar="PATH",
        help="instead of gating, rewrite PATH with the fresh measurements "
        "(union of all FRESH files) plus host/date/commit provenance",
    )
    args = parser.parse_args()

    base_doc, base = load(args.baseline)
    fresh = {}
    for path in args.fresh:
        fresh.update(load(path)[1])

    if args.baseline_update:
        update_baseline(args.baseline_update, base_doc, base, fresh)
        sys.exit(0)

    failed = False
    history = []
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            print(f"FAIL {name}: missing from fresh report")
            failed = True
            continue
        baseline_eps = b["events_per_sec"]
        ratio = f["events_per_sec"] / baseline_eps if baseline_eps else 0.0
        ok = ratio >= args.floor
        print(
            f"{'ok  ' if ok else 'FAIL'} {name}: "
            f"{f['events_per_sec']:.0f} ev/s vs baseline {baseline_eps:.0f} "
            f"(x{ratio:.2f}, floor x{args.floor})"
        )
        if not ok:
            failed = True
        if args.check_events and f["events"] != b["events"]:
            print(
                f"FAIL {name}: event count {f['events']} != "
                f"baseline {b['events']} (determinism violation)"
            )
            failed = True
        history.append(
            {
                "name": name,
                "events_per_sec": f["events_per_sec"],
                "baseline_events_per_sec": baseline_eps,
                "ratio": ratio,
                "ok": ok,
            }
        )

    if args.history:
        record = {
            "at": int(time.time()),
            "baseline": args.baseline,
            "floor": args.floor,
            "commit": os.environ.get("GITHUB_SHA", ""),
            "workloads": history,
        }
        with open(args.history, "a") as out:
            out.write(json.dumps(record) + "\n")
        print(f"history appended to {args.history}")

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
