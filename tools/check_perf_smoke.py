#!/usr/bin/env python3
"""Compare a fresh bench_sim_kernel report against the committed baseline.

Exits non-zero if any workload's events_per_sec falls below --floor times
the baseline. The workloads run a fixed seed for a fixed virtual-time span,
so event counts are deterministic and only wall time varies with the
machine; the floor is deliberately loose so the check catches accidental
algorithmic regressions in the kernel, not runner noise.

Usage: check_perf_smoke.py BASELINE.json FRESH.json [--floor 0.5]
       [--check-events]  (only when both reports used the same span/mode)
       [--history FILE]  (append one JSONL record per run for trending)
"""

import argparse
import json
import os
import sys
import time


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {w["name"]: w for w in data["workloads"]}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--floor", type=float, default=0.5)
    parser.add_argument(
        "--check-events",
        action="store_true",
        help="also require identical (deterministic) event counts",
    )
    parser.add_argument(
        "--history",
        metavar="FILE",
        help="append a JSONL record (per-workload ev/s + ratio vs baseline) "
        "so CI can archive a bench history across commits",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    failed = False
    history = []
    for name, b in base.items():
        f = fresh.get(name)
        if f is None:
            print(f"FAIL {name}: missing from fresh report")
            failed = True
            continue
        baseline_eps = b["events_per_sec"]
        ratio = f["events_per_sec"] / baseline_eps if baseline_eps else 0.0
        ok = ratio >= args.floor
        print(
            f"{'ok  ' if ok else 'FAIL'} {name}: "
            f"{f['events_per_sec']:.0f} ev/s vs baseline {baseline_eps:.0f} "
            f"(x{ratio:.2f}, floor x{args.floor})"
        )
        if not ok:
            failed = True
        if args.check_events and f["events"] != b["events"]:
            print(
                f"FAIL {name}: event count {f['events']} != "
                f"baseline {b['events']} (determinism violation)"
            )
            failed = True
        history.append(
            {
                "name": name,
                "events_per_sec": f["events_per_sec"],
                "baseline_events_per_sec": baseline_eps,
                "ratio": ratio,
                "ok": ok,
            }
        )

    if args.history:
        record = {
            "at": int(time.time()),
            "baseline": args.baseline,
            "floor": args.floor,
            "commit": os.environ.get("GITHUB_SHA", ""),
            "workloads": history,
        }
        with open(args.history, "a") as out:
            out.write(json.dumps(record) + "\n")
        print(f"history appended to {args.history}")

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
