#!/usr/bin/env python3
"""Render an observability bundle (Cluster::WriteObsBundle output) as a
single self-contained HTML dashboard: every compressed metric series as an
inline-SVG chart with its Gorilla compression accounting, the counter and
gauge snapshots, and the tail of the flight-recorder journal with safety
violations highlighted.

Stdlib only — no pip installs, no external assets.

Usage: obs_report.py BUNDLE_DIR [--out report.html] [--journal-tail 200]
"""

import argparse
import html
import json
import os
import sys


def read_json(path):
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def read_jsonl(path):
    if not os.path.exists(path):
        return []
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def fmt_bytes(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024.0
    return f"{n} B"


def svg_chart(points, width=640, height=120, pad=6):
    """One series as an inline SVG polyline over virtual-time ns."""
    if not points:
        return "<svg class='chart'></svg>"
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    t0, t1 = min(ts), max(ts)
    v0, v1 = min(vs), max(vs)
    tspan = (t1 - t0) or 1
    vspan = (v1 - v0) or 1

    def x(t):
        return pad + (t - t0) / tspan * (width - 2 * pad)

    def y(v):
        return height - pad - (v - v0) / vspan * (height - 2 * pad)

    coords = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in points)
    return (
        f"<svg class='chart' viewBox='0 0 {width} {height}' "
        f"preserveAspectRatio='none'>"
        f"<polyline points='{coords}' fill='none' stroke='#2b6cb0' "
        f"stroke-width='1.5'/>"
        f"<text x='{pad}' y='{pad + 8}' class='lbl'>max {v1:g}</text>"
        f"<text x='{pad}' y='{height - pad}' class='lbl'>min {v0:g}</text>"
        f"</svg>"
    )


STYLE = """
body { font-family: system-ui, sans-serif; margin: 2em auto; max-width: 72em;
       color: #1a202c; }
h1 { border-bottom: 2px solid #2b6cb0; padding-bottom: .2em; }
h2 { margin-top: 2em; color: #2b6cb0; }
table { border-collapse: collapse; font-size: .9em; }
td, th { border: 1px solid #cbd5e0; padding: .3em .7em; text-align: left; }
th { background: #edf2f7; }
.chart { width: 100%; max-width: 42em; height: 7.5em; background: #f7fafc;
         border: 1px solid #cbd5e0; display: block; }
.lbl { font-size: 9px; fill: #718096; }
.series { margin-bottom: 1.5em; }
.series .meta { color: #718096; font-size: .85em; }
.journal { font-family: ui-monospace, monospace; font-size: .8em;
           background: #f7fafc; border: 1px solid #cbd5e0; padding: .8em;
           overflow-x: auto; white-space: pre; }
.violation { color: #c53030; font-weight: bold; }
code { background: #edf2f7; padding: 0 .25em; }
"""


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bundle", help="directory WriteObsBundle() produced")
    parser.add_argument("--out", help="output HTML path (default: "
                        "BUNDLE/report.html)")
    parser.add_argument("--journal-tail", type=int, default=200,
                        help="journal events to show (newest last)")
    args = parser.parse_args()

    metrics = read_json(os.path.join(args.bundle, "metrics.json"))
    node_stats = read_json(os.path.join(args.bundle, "node_stats.json"))
    journal = read_jsonl(os.path.join(args.bundle, "journal.jsonl"))
    if metrics is None and not journal:
        sys.exit(f"no metrics.json or journal.jsonl under {args.bundle}")

    out = []
    out.append(f"<!DOCTYPE html><html><head><meta charset='utf-8'>"
               f"<title>nbraft observability report</title>"
               f"<style>{STYLE}</style></head><body>")
    out.append(f"<h1>nbraft observability report</h1>"
               f"<p>bundle: <code>{html.escape(args.bundle)}</code></p>")

    if metrics is not None:
        series = metrics.get("series", [])
        out.append("<h2>Sampled series (Gorilla-compressed)</h2>")
        if not series:
            out.append("<p>No sampled series (sampler was off).</p>")
        for s in series:
            points = s.get("points", [])
            enc = s.get("encoded_bytes", 0)
            raw = s.get("raw_bytes", 0)
            chunks = s.get("sealed_chunks", 0)
            ratio = f"{raw / enc:.1f}x" if enc else "n/a (open tail only)"
            out.append("<div class='series'>")
            out.append(f"<strong>{html.escape(s['name'])}</strong> "
                       f"<span class='meta'>{len(points)} points · "
                       f"{chunks} sealed chunks · {fmt_bytes(enc)} encoded "
                       f"of {fmt_bytes(raw)} raw · compression {ratio}"
                       f"</span>")
            out.append(svg_chart(points))
            out.append("</div>")

        out.append("<h2>Counters</h2><table><tr><th>name</th>"
                   "<th>value</th></tr>")
        for name, value in sorted(metrics.get("counters", {}).items()):
            out.append(f"<tr><td>{html.escape(name)}</td>"
                       f"<td>{value}</td></tr>")
        out.append("</table>")

        gauges = metrics.get("gauges", {})
        if gauges:
            out.append("<h2>Gauges</h2><table><tr><th>name</th>"
                       "<th>value</th></tr>")
            for name, value in sorted(gauges.items()):
                out.append(f"<tr><td>{html.escape(name)}</td>"
                           f"<td>{value:g}</td></tr>")
            out.append("</table>")

    if node_stats is not None:
        out.append("<h2>Per-node stats</h2><table>")
        nodes = sorted(node_stats.keys())
        keys = sorted(
            k for k, v in node_stats[nodes[0]].items()
            if isinstance(v, (int, float))
        ) if nodes else []
        out.append("<tr><th>stat</th>" +
                   "".join(f"<th>{html.escape(n)}</th>" for n in nodes) +
                   "</tr>")
        for k in keys:
            cells = "".join(
                f"<td>{node_stats[n].get(k, '')}</td>" for n in nodes)
            out.append(f"<tr><td>{html.escape(k)}</td>{cells}</tr>")
        out.append("</table>")

    if journal:
        meta = journal[0] if journal[0].get("type") == "meta" else {}
        events = [r for r in journal if r.get("type") == "event"]
        tail = events[-args.journal_tail:]
        out.append("<h2>Flight recorder</h2>")
        out.append(f"<p>{meta.get('events_recorded', '?')} events recorded, "
                   f"{meta.get('events_dropped', '?')} overwritten, "
                   f"{meta.get('events_emitted', len(events))} in dump; "
                   f"showing newest {len(tail)}.</p>")
        lines = []
        for e in tail:
            ms = e.get("at_ns", 0) / 1e6
            kind = e.get("kind", "?")
            who = f"node {e['node']}" if e.get("node", -1) >= 0 else "cluster"
            detail = (f"rpc={e['rpc']} bytes={e['bytes']}"
                      if "rpc" in e else f"a={e.get('a')} b={e.get('b')}")
            peer = f" peer={e['peer']}" if e.get("peer", -1) >= 0 else ""
            line = f"[{ms:14.6f} ms] {who}: {kind}{peer} {detail}"
            escaped = html.escape(line)
            if "invariant_violate" in kind:
                escaped = f"<span class='violation'>{escaped}</span>"
            lines.append(escaped)
        out.append(f"<div class='journal'>{chr(10).join(lines)}</div>")

    out.append("</body></html>")

    out_path = args.out or os.path.join(args.bundle, "report.html")
    with open(out_path, "w") as f:
        f.write("\n".join(out) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
